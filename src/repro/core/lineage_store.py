"""Per-operator lineage stores: the encoding strategies of §VI-B.

Each workflow node that stores region lineage gets one store object per
:class:`~repro.core.modes.StorageStrategy`.  The four concrete layouts match
Figure 4 of the paper:

``FullOne``
    One hash entry per key-side *cell*; the value references a single shared
    entry holding the other side's cells (or, for one-to-one pairs written
    through the bulk API, the single cell is inlined — same 8 bytes, no
    indirection).  Queries are direct hash lookups.

``FullMany``
    One entry per *region pair*: the key is the serialized key-side cell
    set, indexed by an R-tree over its bounding box; the value is the
    serialized other side.

``PayOne`` / ``PayMany``
    As above, but the value is the developer payload (duplicated per key
    cell for ``PayOne``, exactly as the paper describes).  Composite lineage
    reuses the payload layouts.

Every store is *oriented*: backward-optimized stores key by output cells,
forward-optimized ones key by input cells (one sub-store per input array,
since cells of different inputs would collide after bit-packing).  Queries
against the matching orientation are hash probes / R-tree descents — and
R-tree candidate collection descends *once per query coordinate batch*
(:meth:`~repro.storage.rtree.RTree.query_points`), not once per cell.
Queries against the wrong orientation fall back to a scan over every entry
— the expensive mismatch the paper measures in Figure 6(b).  Those scans
are *batched*: the whole value heap is handed to
:class:`repro.storage.codecs.BatchProbe`, which groups entries by codec tag
and answers per-entry verdicts or intersections in a handful of vectorised
passes (lowered tables cached on the :class:`RegionEntryTable` /
:class:`~repro.storage.kvstore.BlobStore`, so repeat scans skip the header
walk entirely).  The fixed-width hash layouts scan the same way, via one
``isin_sorted`` pass over their key/value vectors; payload layouts expose
their columnar state (:meth:`OpLineageStore.payload_entries`) so the
executor's payload scan batches too.  Matched backward reads are in-situ:
candidate key sets are matched with one concatenated ``searchsorted`` pass,
and only the hit entries' values — and only the requested input's field —
are ever decoded.

Persistence is *scan-ready*: each store flushes to ONE segment file
(:mod:`repro.storage.segment`) holding its sorted columns, the R-tree, and
the lowered batch-scan tables, so a store reloaded in a fresh process —
lazily, via the :class:`~repro.core.catalog.StoreCatalog` — answers its
first mismatched scan at warm speed (no codec header walk; see
``docs/storage_format.md``).

All public methods speak *packed* coordinates (int64, see
:mod:`repro.arrays.coords`).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import lockcheck
from repro.arrays import coords as C
from repro.core.model import BufferSink
from repro.core.modes import (
    EncodingKind,
    LineageMode,
    Orientation,
    StorageStrategy,
)
from repro.errors import LineageError, StorageError
from repro.storage import codecs
from repro.storage import filters as filterlib
from repro.storage import segment as seglib
from repro.storage import serialize as ser
from repro.storage.kvstore import BlobStore, HashStore, _gather_slices
from repro.storage.rtree import RTree

__all__ = [
    "OpLineageStore",
    "RegionEntryTable",
    "encode_full_values",
    "make_store",
]


def encode_singleton_int_arrays(values: np.ndarray) -> np.ndarray:
    """Vectorised ``encode_int_array([v])`` for many ``v`` at once.

    Single-element arrays always serialize to the same 12-byte layout
    (magic, sorted flag, count=1, width=1, 8-byte base), so a whole batch
    can be emitted as an ``(n, 12)`` uint8 matrix without a Python loop.
    """
    values = np.ascontiguousarray(values, dtype=np.int64)
    n = values.size
    out = np.empty((n, 12), dtype=np.uint8)
    out[:, 0] = 0x49
    out[:, 1] = 0x01
    out[:, 2] = 0x01
    out[:, 3] = 0x01
    out[:, 4:] = values.astype("<i8").view(np.uint8).reshape(n, 8)
    return out


def encode_full_value(incells_per_input: list[np.ndarray]) -> bytes:
    """Serialize one region pair's per-input packed cell sets."""
    return b"".join(ser.encode_int_array(np.sort(arr)) for arr in incells_per_input)


def decode_full_value(buf: bytes, arity: int) -> list[np.ndarray]:
    out = []
    offset = 0
    for _ in range(arity):
        arr, offset = ser.decode_int_array(buf, offset)
        out.append(arr)
    return out


def _encode_sorted_segmented(
    values: np.ndarray, offsets: np.ndarray
) -> tuple[bytes, np.ndarray]:
    """Sort each ``offsets`` segment of ``values`` and batch-encode it.

    The byte-for-byte vectorised counterpart of ``encode_int_array(sort(s))``
    per segment: one global segmented sort (lexsort keyed by segment owner)
    feeds :func:`repro.storage.codecs.encode_sorted_sets`, so no per-pair
    Python work happens on the deferred capture path."""
    offsets = np.ascontiguousarray(offsets, dtype=np.int64)
    counts = np.diff(offsets)
    owner = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    order = np.lexsort((values, owner))
    buf, lengths = codecs.encode_sorted_sets(values[order], offsets)
    return buf.tobytes(), lengths


def encode_full_values(
    packed_per_input: list[np.ndarray], offsets_per_input
) -> tuple[bytes, np.ndarray]:
    """Vectorised :func:`encode_full_value` over ``n`` region pairs.

    ``packed_per_input[i]`` holds input ``i``'s packed cells for every pair,
    segmented by ``offsets_per_input[i]`` (an ``(n+1,)`` offset array).
    Returns ``(buf, lengths)`` where pair ``p``'s value bytes — the
    concatenation of its per-input encoded sorted cell sets — occupy
    ``lengths[p]`` consecutive bytes of ``buf`` in pair order.
    """
    arity = len(packed_per_input)
    bufs: list[bytes] = []
    lens_per_input: list[np.ndarray] = []
    for vals, offsets in zip(packed_per_input, offsets_per_input):
        buf, lengths = _encode_sorted_segmented(vals, offsets)
        bufs.append(buf)
        lens_per_input.append(lengths)
    if arity == 1:
        return bufs[0], lens_per_input[0]
    # interleave the per-input streams pair-major (pair p = its arity slices)
    n = lens_per_input[0].size
    starts = np.empty((n, arity), dtype=np.int64)
    lens_m = np.empty((n, arity), dtype=np.int64)
    base = 0
    for i in range(arity):
        li = lens_per_input[i]
        st = np.zeros(n, dtype=np.int64)
        np.cumsum(li[:-1], out=st[1:])
        starts[:, i] = st + base
        lens_m[:, i] = li
        base += len(bufs[i])
    flat_lens = lens_m.reshape(-1)
    out = _gather_slices(
        b"".join(bufs), starts.reshape(-1), flat_lens, int(flat_lens.sum())
    )
    return out, lens_m.sum(axis=1)


class RegionEntryTable:
    """Columnar table of (key cell set, value blob) entries with an R-tree
    over the key sets' bounding boxes (the *Many layouts)."""

    def __init__(self, key_shape: tuple[int, ...]):
        self.key_shape = tuple(key_shape)
        self._key_chunks: list[np.ndarray] = []
        self._klen_chunks: list[np.ndarray] = []
        self._val_chunks: list[bytes] = []
        self._vlen_chunks: list[np.ndarray] = []
        self._keys: np.ndarray | None = None
        self._koff: np.ndarray | None = None
        self._vbuf: bytes = b""
        self._voff: np.ndarray | None = None
        self._lo: np.ndarray | None = None
        self._hi: np.ndarray | None = None
        self._rtree: RTree | None = None
        self._probes: dict[int, codecs.BatchProbe] = {}
        #: ``(segment, prefix, fields, n)`` when persisted lowered tables
        #: are available but not yet hydrated — the shard holding them maps
        #: only when a mismatched scan first asks (lazy per-shard load)
        self._probe_source: tuple | None = None
        self._dirty = False
        # serializes finalize and probe construction under concurrent
        # readers; the finalized columns themselves are immutable
        self._flock = lockcheck.make_rlock("region_table.finalize")

    # -- writes ----------------------------------------------------------------

    def add_entry(self, key_packed: np.ndarray, value: bytes) -> None:
        key_packed = np.sort(np.ascontiguousarray(key_packed, dtype=np.int64))
        if key_packed.size == 0:
            raise StorageError("a region entry needs at least one key cell")
        # szlint: ignore[SZ006] -- ingest is single-writer by contract; _flock only guards the finalize merge
        self._key_chunks.append(key_packed)
        self._klen_chunks.append(np.asarray([key_packed.size], dtype=np.int64))
        # zero-copy when the caller already hands over immutable bytes
        self._val_chunks.append(value if type(value) is bytes else bytes(value))
        self._vlen_chunks.append(np.asarray([len(value)], dtype=np.int64))
        self._dirty = True

    def add_entries(
        self,
        keys_concat: np.ndarray,
        key_counts: np.ndarray,
        val_buf: bytes,
        val_lengths: np.ndarray,
    ) -> None:
        """Bulk-add ``n`` entries with variable-size key cell sets.

        Entry ``e`` owns ``key_counts[e]`` consecutive cells of
        ``keys_concat`` and ``val_lengths[e]`` consecutive bytes of
        ``val_buf``.  Key sets are sorted with one segmented lexsort pass —
        the columnar counterpart of ``n`` :meth:`add_entry` calls, with no
        per-entry Python objects (the deferred-capture lowering path).
        """
        keys_concat = np.ascontiguousarray(keys_concat, dtype=np.int64)
        key_counts = np.ascontiguousarray(key_counts, dtype=np.int64)
        n = key_counts.size
        if n == 0:
            return
        if (key_counts < 1).any():
            raise StorageError("a region entry needs at least one key cell")
        if int(key_counts.sum()) != keys_concat.size:
            raise StorageError("key counts must span the key cell buffer")
        val_lengths = np.ascontiguousarray(val_lengths, dtype=np.int64)
        if val_lengths.size != n or int(val_lengths.sum()) != len(val_buf):
            raise StorageError("value lengths must align with keys and span buffer")
        owner = np.repeat(np.arange(n, dtype=np.int64), key_counts)
        order = np.lexsort((keys_concat, owner))
        # szlint: ignore[SZ006] -- ingest is single-writer by contract; _flock only guards the finalize merge
        self._key_chunks.append(keys_concat[order])
        self._klen_chunks.append(key_counts)
        self._val_chunks.append(val_buf if type(val_buf) is bytes else bytes(val_buf))
        self._vlen_chunks.append(val_lengths)
        self._dirty = True

    def add_singleton_entries(
        self, keys_packed: np.ndarray, val_buf: bytes, val_lengths: np.ndarray
    ) -> None:
        """Bulk-add ``n`` entries whose key side is a single cell each."""
        keys_packed = np.ascontiguousarray(keys_packed, dtype=np.int64)
        n = keys_packed.size
        if n == 0:
            return
        val_lengths = np.ascontiguousarray(val_lengths, dtype=np.int64)
        if val_lengths.size != n or int(val_lengths.sum()) != len(val_buf):
            raise StorageError("value lengths must align with keys and span buffer")
        # szlint: ignore[SZ006] -- ingest is single-writer by contract; _flock only guards the finalize merge
        self._key_chunks.append(keys_packed)
        self._klen_chunks.append(np.ones(n, dtype=np.int64))
        self._val_chunks.append(val_buf if type(val_buf) is bytes else bytes(val_buf))
        self._vlen_chunks.append(val_lengths)
        self._dirty = True

    def extend_columns(
        self,
        keys: np.ndarray,
        koff: np.ndarray,
        vbuf,
        voff: np.ndarray,
    ) -> None:
        """Bulk-append another table's finalized columns (the generational
        merge writer): entry boundaries are preserved, and the next
        :meth:`finalize` re-sorts boxes/R-tree over the merged entry set.
        The inputs are copied, so the merge outlives the source table's
        backing segment."""
        koff = np.asarray(koff, dtype=np.int64)
        n = koff.size - 1
        if n <= 0:
            return
        # szlint: ignore[SZ006] -- ingest is single-writer by contract; _flock only guards the finalize merge
        self._key_chunks.append(np.array(keys, dtype=np.int64))
        self._klen_chunks.append(np.diff(koff))
        self._val_chunks.append(bytes(vbuf))
        self._vlen_chunks.append(np.diff(np.asarray(voff, dtype=np.int64)))
        self._dirty = True

    # -- finalize -----------------------------------------------------------------

    def finalize(self) -> None:
        if not self._dirty:  # racy fast path; re-checked under the lock
            return
        with self._flock:
            if not self._dirty:
                return
            new_keys = np.concatenate(self._key_chunks) if self._key_chunks else None
            if new_keys is None:
                return
            new_klens = np.concatenate(self._klen_chunks)
            new_vbuf = b"".join(self._val_chunks)
            new_vlens = np.concatenate(self._vlen_chunks)
            if self._keys is not None:
                old_klens = np.diff(self._koff)
                old_vlens = np.diff(self._voff)
                keys = np.concatenate([self._keys, new_keys])
                klens = np.concatenate([old_klens, new_klens])
                vbuf = bytes(self._vbuf) + new_vbuf  # bytes() lifts mmap-backed views
                vlens = np.concatenate([old_vlens, new_vlens])
            else:
                keys, klens, vbuf, vlens = new_keys, new_klens, new_vbuf, new_vlens
            n = klens.size
            koff = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(klens, out=koff[1:])
            voff = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(vlens, out=voff[1:])
            coords = C.unpack_coords(keys, self.key_shape)
            lo = np.minimum.reduceat(coords, koff[:-1], axis=0)
            hi = np.maximum.reduceat(coords, koff[:-1], axis=0)
            self._keys, self._koff = keys, koff
            self._vbuf, self._voff = vbuf, voff
            self._lo, self._hi = lo, hi
            self._rtree = RTree.build(lo, hi)
            # lowered batch-probe tables (cached or persisted) describe the
            # old heap; both must go when the heap grows
            self._probes = {}
            self._probe_source = None
            self._key_chunks, self._klen_chunks = [], []
            self._val_chunks, self._vlen_chunks = [], []
            self._dirty = False

    # -- reads -------------------------------------------------------------------

    @property
    def n_entries(self) -> int:
        pending = sum(arr.size for arr in self._klen_chunks)
        stored = self._koff.size - 1 if self._koff is not None else 0
        return pending + stored

    def candidate_entries(self, query_coords: np.ndarray) -> np.ndarray:
        """Entry ids whose bounding boxes contain any query coordinate.

        Small queries descend the R-tree *once for the whole coordinate
        batch* (:meth:`~repro.storage.rtree.RTree.query_points`, a few
        vectorised passes per level — not one Python descent per cell);
        large frontiers switch to a spatial-join style vectorised sweep
        over the entry boxes.
        """
        self.finalize()
        if self._rtree is None or query_coords.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        n_entries = self._koff.size - 1
        if query_coords.shape[0] <= min(2048, max(64, n_entries // 8)):
            return self._rtree.query_points(query_coords)
        qlo = query_coords.min(axis=0)
        qhi = query_coords.max(axis=0)
        box_hit = ((self._lo <= qhi) & (self._hi >= qlo)).all(axis=1)
        return np.nonzero(box_hit)[0].astype(np.int64)

    def all_singleton_keys(self) -> np.ndarray | None:
        """The flat key vector when every entry holds exactly one key cell
        (enables fully vectorised matching); None otherwise."""
        self.finalize()
        if self._koff is None:
            return np.empty(0, dtype=np.int64)
        if self._koff.size - 1 != self._keys.size:
            return None
        return self._keys

    def entry_keys(self, entry_id: int) -> np.ndarray:
        self.finalize()
        return self._keys[self._koff[entry_id]: self._koff[entry_id + 1]]

    def entries_keys(self, entry_ids: np.ndarray) -> np.ndarray:
        """Concatenated key cells of many entries in one vectorised gather."""
        self.finalize()
        entry_ids = np.asarray(entry_ids, dtype=np.int64)
        if self._koff is None or entry_ids.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = self._koff[entry_ids]
        counts = self._koff[entry_ids + 1] - starts
        return self._keys[C.expand_ranges(starts, counts)]

    def match_keys(
        self, entry_ids: np.ndarray, sorted_query: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(hit, hit_cells)``: which of ``entry_ids`` have any key cell in
        ``sorted_query``, and the matching key cells themselves — one
        concatenated membership pass instead of a per-entry ``isin``."""
        self.finalize()
        entry_ids = np.asarray(entry_ids, dtype=np.int64)
        if self._koff is None or entry_ids.size == 0:
            return np.zeros(entry_ids.size, dtype=bool), np.empty(0, dtype=np.int64)
        starts = self._koff[entry_ids]
        counts = self._koff[entry_ids + 1] - starts
        keys = self._keys[C.expand_ranges(starts, counts)]
        member = C.isin_sorted(keys, sorted_query)
        owner = np.repeat(np.arange(entry_ids.size, dtype=np.int64), counts)
        hit = np.zeros(entry_ids.size, dtype=bool)
        hit[owner[member]] = True
        return hit, keys[member]

    def entry_value(self, entry_id: int) -> bytes:
        self.finalize()
        return bytes(self._vbuf[self._voff[entry_id]: self._voff[entry_id + 1]])

    # -- in-situ value probes -----------------------------------------------------
    #
    # Valid only for tables whose values are codec-encoded cell sets (the
    # Full layouts); ``field`` skips over preceding sets when a value holds
    # one per input array.  None of these slice the value buffer.

    def batch_probe(self, field: int = 0, ticker=None) -> codecs.BatchProbe:
        """Vectorised prober over every entry's cell-set ``field``.

        Built over the shared value heap (no per-entry byte slicing) and
        cached until new entries are finalized, so a scan's per-entry
        verdicts cost a few NumPy passes — and repeat scans skip even the
        header walk.  Segment-backed tables rehydrate these probes from
        their persisted lowered tables, so a fresh process starts warm.
        ``ticker`` is called once per batch (the cold field-offset walk for
        ``field > 0`` counts as one batch), so a query-time budget
        interrupts at batch boundaries only.
        """
        self.finalize()
        probe = self._probes.get(field)
        if probe is None:
            with self._flock:
                probe = self._probes.get(field)
                if probe is None and self._probe_source is not None:
                    seg, prefix, fields, n = self._probe_source
                    if field in fields:
                        # hydrate from the persisted lowered tables; this is
                        # the access that maps the shard holding them
                        tables = {
                            tname: seg.array(f"{prefix}probe{field}.{tname}")
                            for tname in codecs.BatchProbe.LOWERED_NAMES
                        }
                        probe = codecs.BatchProbe.from_lowered(self._vbuf, n, tables)
                        self._probes[field] = probe
                if probe is None:
                    if self._voff is None:
                        offsets = np.empty(0, dtype=np.int64)
                        ends = offsets
                    elif field == 0:
                        offsets, ends = self._voff[:-1], self._voff[1:]
                    else:
                        if ticker is not None:
                            ticker()
                        offsets = np.empty(self._voff.size - 1, dtype=np.int64)
                        for e in range(offsets.size):
                            offsets[e] = self._value_offset(e, field)
                        ends = self._voff[1:]
                    probe = codecs.BatchProbe(self._vbuf, offsets, ends)
                    self._probes[field] = probe
        return probe

    def probe_fields(self) -> set[int]:
        """Fields whose lowered batch-probe tables are warm — cached in
        memory, or persisted in the backing segment (hydration is lazy but
        costs no header walk, so they count as warm)."""
        fields = {f for f, p in self._probes.items() if p._lowered is not None}
        if self._probe_source is not None:
            fields |= set(self._probe_source[2])
        return fields

    def value_cells(self, entry_id: int, field: int = 0) -> np.ndarray:
        """Decode one cell-set field of the entry value in place."""
        offset = self._value_offset(entry_id, field)  # finalizes first
        cells, _ = codecs.decode_cells(self._vbuf, offset)
        return cells

    def _value_offset(self, entry_id: int, field: int) -> int:
        self.finalize()
        start = int(self._voff[entry_id])
        end = int(self._voff[entry_id + 1])
        # never read into the next entry's bytes: a wrong field count or a
        # value whose header overstates its payload must fail loudly, not
        # probe a neighbouring value
        try:
            offset = codecs.skip_fields(self._vbuf, start, end, field)
        except StorageError as exc:
            raise StorageError(f"entry {entry_id}: {exc}") from None
        if codecs.skip_cells(self._vbuf, offset) > end:
            raise StorageError(
                f"entry {entry_id} field {field} overruns the entry value"
            )
        return offset

    def value_contains_any(
        self, entry_id: int, sorted_query: np.ndarray, field: int = 0
    ) -> bool:
        """Decode-free: does the entry's encoded cell set hit the query?"""
        offset = self._value_offset(entry_id, field)  # finalizes first
        return codecs.contains_any(self._vbuf, sorted_query, offset)

    def value_intersect(
        self, entry_id: int, sorted_query: np.ndarray, field: int = 0
    ) -> np.ndarray:
        """Query values present in the entry's encoded cell set."""
        offset = self._value_offset(entry_id, field)  # finalizes first
        return codecs.intersect(self._vbuf, sorted_query, offset)

    def value_bounds(self, entry_id: int, field: int = 0) -> tuple[int, int, int]:
        """``(lo, hi, count)`` of the encoded set without expanding it."""
        offset = self._value_offset(entry_id, field)  # finalizes first
        return codecs.decoded_bounds(self._vbuf, offset)

    def columns(self) -> tuple[np.ndarray, np.ndarray, bytes, np.ndarray]:
        """The finalized columnar state ``(keys, koff, vbuf, voff)`` — entry
        ``e`` owns key cells ``keys[koff[e]:koff[e+1]]`` and value bytes
        ``vbuf[voff[e]:voff[e+1]]``.  This is the whole-table scan surface:
        consumers batch over it instead of cursoring entry by entry."""
        self.finalize()
        if self._koff is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.zeros(1, dtype=np.int64), b"", np.zeros(1, dtype=np.int64)
        return self._keys, self._koff, self._vbuf, self._voff

    def all_key_cells(self) -> np.ndarray:
        self.finalize()
        if self._keys is None:
            return np.empty(0, dtype=np.int64)
        return self._keys

    def entry_boxes(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-entry inclusive bounding boxes ``(lo, hi)`` of the key cells
        (used by the §V-B bounding-box-predicate ablation)."""
        self.finalize()
        if self._lo is None:
            empty = np.empty((0, len(self.key_shape)), dtype=np.int64)
            return empty, empty
        return self._lo, self._hi

    # -- persistence ---------------------------------------------------------------

    def dump(self, writer: seglib.SegmentWriter, prefix: str = "") -> None:
        """Write the finalized table — columns, bounding boxes, R-tree, and
        any warm lowered batch-probe tables — into a segment file.  The
        value buffer is opaque at this layer, so values that predate the
        codec tag bytes round-trip unchanged; the derived structures ride
        along so a load serves queries without rebuilding anything."""
        self.finalize()
        if self._koff is None:
            writer.add_json(prefix + "meta", {"n": 0, "probe_fields": []})
            return
        fields = sorted(self.probe_fields())
        writer.add_json(
            prefix + "meta",
            {"n": int(self._koff.size - 1), "probe_fields": fields},
        )
        writer.add_array(prefix + "keys", self._keys)
        writer.add_array(prefix + "koff", self._koff)
        writer.add_array(prefix + "voff", self._voff)
        writer.add_bytes(prefix + "vbuf", self._vbuf)
        writer.add_array(prefix + "lo", self._lo)
        writer.add_array(prefix + "hi", self._hi)
        self._rtree.dump(writer, prefix + "rtree.")
        for field in fields:
            # batch_probe hydrates lazily-persisted tables when needed
            tables = self.batch_probe(field=field).lowered_tables()
            for tname in codecs.BatchProbe.LOWERED_NAMES:
                writer.add_array(f"{prefix}probe{field}.{tname}", tables[tname])

    @classmethod
    def from_segment(
        cls, seg: seglib.Segment, prefix: str, key_shape: tuple[int, ...]
    ) -> "RegionEntryTable":
        """Rehydrate a :meth:`dump`-ed table from mmap-backed sections: no
        column copy, no box recomputation, no R-tree rebuild, and the
        lowered batch-probe tables come back warm."""
        table = cls(key_shape)
        meta = seg.json(prefix + "meta")
        if meta["n"] == 0:
            return table
        table._keys = seg.array(prefix + "keys")
        table._koff = seg.array(prefix + "koff")
        table._voff = seg.array(prefix + "voff")
        table._vbuf = seg.view(prefix + "vbuf")
        table._lo = seg.array(prefix + "lo")
        table._hi = seg.array(prefix + "hi")
        table._rtree = RTree.from_segment(seg, prefix + "rtree.")
        fields = [int(f) for f in meta.get("probe_fields", [])]
        if fields:
            # defer hydration: the shard holding the lowered tables is
            # mapped only when a mismatched scan first asks for a probe
            table._probe_source = (seg, prefix, fields, int(meta["n"]))
        return table

    def flush(self, path: str) -> int:
        """Write the finalized table to one segment file."""
        writer = seglib.SegmentWriter()
        self.dump(writer)
        return writer.write(path)

    @classmethod
    def load(cls, path: str, key_shape: tuple[int, ...]) -> "RegionEntryTable":
        import struct

        if seglib.is_segment_file(path):
            return cls.from_segment(seglib.Segment.open(path), "", key_shape)
        # legacy pre-segment layout: bare counts + columns; boxes and the
        # R-tree are re-derived by finalize()
        table = cls(key_shape)
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError as exc:
            raise StorageError(f"cannot load store file {path!r}: {exc}") from exc
        n, n_keys = struct.unpack_from("<qq", raw, 0)
        if n == 0:
            return table
        offset = 16
        keys = np.frombuffer(raw, dtype="<i8", count=n_keys, offset=offset).astype(np.int64)
        offset += 8 * n_keys
        koff = np.frombuffer(raw, dtype="<i8", count=n + 1, offset=offset).astype(np.int64)
        offset += 8 * (n + 1)
        voff = np.frombuffer(raw, dtype="<i8", count=n + 1, offset=offset).astype(np.int64)
        offset += 8 * (n + 1)
        vbuf = raw[offset:]
        table._key_chunks = [keys]
        table._klen_chunks = [np.diff(koff)]
        table._val_chunks = [vbuf]
        table._vlen_chunks = [np.diff(voff)]
        table._dirty = True
        table.finalize()
        return table

    def disk_bytes(self) -> int:
        self.finalize()
        if self._keys is None:
            return 0
        total = self._keys.nbytes + len(self._vbuf)
        total += self._koff.nbytes + self._voff.nbytes
        total += self._rtree.nbytes() if self._rtree is not None else 0
        return int(total)


class _ClosedComponent:
    """Poison component installed by :meth:`OpLineageStore.close`.

    A closed store must fail *loudly*: if it kept empty live components, a
    caller that held the store across an eviction would silently get empty
    lineage for every query — wrong answers, not an error.  Any attribute
    access on a closed component raises instead.
    """

    __slots__ = ("_what",)

    def __init__(self, what: str):
        self._what = what

    def __getattr__(self, name):
        raise StorageError(
            f"lineage store {self._what} is closed (its segment mapping was "
            "released, e.g. by serving-cache eviction); borrow the store "
            "through a QuerySession to keep it pinned while reading"
        )


class OpLineageStore:
    """Base class: strategy-specific layout + shared accounting."""

    def __init__(
        self,
        node: str,
        strategy: StorageStrategy,
        out_shape: tuple[int, ...],
        in_shapes: tuple[tuple[int, ...], ...],
    ):
        self.node = node
        self.strategy = strategy
        self.out_shape = tuple(out_shape)
        self.in_shapes = tuple(tuple(s) for s in in_shapes)
        self.arity = len(in_shapes)
        self.write_seconds = 0.0
        #: the segment handle backing this store's components when it was
        #: hydrated from disk (owned: ``close()`` releases it); None for
        #: resident stores built by ingest
        self._segment = None
        #: per-tag :class:`~repro.storage.filters.GenerationFilter` loaded
        #: from the segment's filter sections; None for resident stores and
        #: segments that predate filters (probes then answer "may contain")
        self._filters: dict | None = None

    # -- writes -------------------------------------------------------------

    def ingest(self, sink: BufferSink) -> None:
        raise NotImplementedError

    def finalize_if_possible(self) -> None:
        """Sort/index pending writes now so the cost lands at write time,
        mirroring the paper's bulk encoding during workflow execution."""
        for store in self._hash_stores():
            store.finalize()
        for table in self._entry_tables():
            table.finalize()

    def _hash_stores(self) -> list[HashStore]:
        return []

    def _entry_tables(self) -> list["RegionEntryTable"]:
        return []

    # -- persistence -------------------------------------------------------

    SEGMENT_FILENAME = "store.seg"

    def _components(self) -> dict[str, object]:
        """Named sub-stores, for flush/load; overridden per layout."""
        return {}

    def _filter_key_arrays(self) -> dict[str, tuple[np.ndarray, tuple]]:
        """The matched-read key surfaces to summarise at flush time:
        ``tag -> (packed keys, shape)``.  Backward-keyed layouts expose one
        surface (``"b"``, output-packed); forward layouts one per input
        (``"f<i>"``, input-packed).  Overridden per layout; an empty dict
        flushes no filter sections."""
        return {}

    def persists_filters(self) -> bool:
        """True when :meth:`flush_segment` will write bloom/zone filter
        sections for this store (feeds the catalog manifest's ``filters``
        flag, answered later without opening the segment)."""
        return bool(self._filter_key_arrays())

    def filter_decision(self, tag: str, qpacked: np.ndarray):
        """Tri-state generation-skip probe for overlay reads.

        ``False``: this store provably holds none of the query keys on
        surface ``tag`` (exact — the read may be skipped).  ``True``: it
        may hold some (bloom/zone passed).  ``None``: no filter available
        (resident store, pre-filter segment, unknown tag) — the caller
        must read."""
        if self._filters is None:
            return None
        f = self._filters.get(tag)
        if f is None:
            return None
        return f.may_contain(qpacked)

    def _set_component(self, name: str, obj) -> None:
        raise StorageError(f"{type(self).__name__} has no component {name!r}")

    def warm_lowered_tables(self) -> None:
        """Build the lowered batch-probe tables every mismatched scan of
        this layout would need, so a flush persists them and a reloaded
        store starts warm.  Overridden by the Full layouts; the payload
        layouts scan columnar state and have nothing to lower."""

    def lowered_ready(self) -> bool:
        """True when a mismatched-orientation scan runs off cached/persisted
        lowered tables — no codec header walk left to pay."""
        return True

    def flush_segment(
        self,
        path: str,
        shard_threshold_bytes: int | None = None,
        stale_sink: list | None = None,
    ) -> int:
        """Persist the whole store — every component plus the lowered
        batch-probe tables — and return bytes written.

        Writes ONE segment file by default; when ``shard_threshold_bytes``
        is given and the payload exceeds it, the store is split into
        ``path.0 .. path.k`` shard files instead (each a complete segment;
        see :meth:`~repro.storage.segment.SegmentWriter.write_sharded`), so
        a later reader maps only the shards its query touches.

        ``stale_sink`` defers removal of the previous flush's superseded
        (non-shadowing) files: their paths are appended there instead of
        unlinked, which is how online compaction keeps a pinned reader's
        lazily-mapped shards alive until its last release."""
        self.finalize_if_possible()
        self.warm_lowered_tables()
        writer = seglib.SegmentWriter()
        writer.add_json(
            "store",
            {
                "node": self.node,
                "strategy": self.strategy.label,
                "components": list(self._components()),
            },
        )
        for name, component in self._components().items():
            component.dump(writer, prefix=f"{name}.")
        surfaces = self._filter_key_arrays()
        if surfaces:
            filterlib.dump_filters(
                writer,
                {
                    tag: filterlib.GenerationFilter.build(keys, shape)
                    for tag, (keys, shape) in surfaces.items()
                },
            )
        if shard_threshold_bytes is not None:
            nbytes, _ = writer.write_sharded(
                path, shard_threshold_bytes, stale_sink=stale_sink
            )
            return nbytes
        return writer.write(path, stale_sink=stale_sink)

    def load_segment(self, source) -> None:
        """Replace every component with its counterpart in ``source`` (a
        path or an open :class:`~repro.storage.segment.Segment` /
        :class:`~repro.storage.segment.ShardedSegment`).  Sections stay
        mmap-backed: nothing is decoded or copied until a query touches it.
        The store takes ownership of the handle: :meth:`close` releases it."""
        if isinstance(source, (seglib.Segment, seglib.ShardedSegment)):
            seg = source
        else:
            seg = seglib.open_segment(source)
        meta = seg.json("store")
        if (
            meta.get("node") != self.node
            or meta.get("strategy") != self.strategy.label
            or set(meta.get("components", ())) != set(self._components())
        ):
            raise StorageError(
                f"segment {seg.path!r} holds store "
                f"({meta.get('node')!r}, {meta.get('strategy')!r}); "
                f"refusing to load it into ({self.node!r}, {self.strategy.label!r})"
            )
        for name, component in self._components().items():
            prefix = f"{name}."
            if isinstance(component, HashStore):
                self._set_component(name, HashStore.from_segment(seg, prefix, name))
            elif isinstance(component, BlobStore):
                self._set_component(name, BlobStore.from_segment(seg, prefix, name))
            else:
                self._set_component(
                    name,
                    RegionEntryTable.from_segment(seg, prefix, component.key_shape),
                )
        self._filters = filterlib.load_filters(seg)
        old = self._segment
        self._segment = seg
        if old is not None and old is not seg:
            old.close()

    def close(self) -> None:
        """Release the backing segment mapping (if any).

        Components are replaced with poison stand-ins first, so their
        mmap-backed views stop exporting the buffer — which is what lets
        the mapping actually unmap — and any later read through this store
        raises :class:`~repro.errors.StorageError` rather than silently
        answering empty off freed state.  Safe to call on resident stores
        (no-op) and safe to call twice."""
        seg, self._segment = self._segment, None
        if seg is None:
            return
        # filters hold mmap-backed bit views; drop them so the mapping can
        # unmap (probes on a closed store then answer None, and the read
        # they force hits the poison components below — loud, not empty)
        self._filters = None
        what = f"({self.node!r}, {self.strategy.label})"
        for name in self._components():
            self._set_component(name, _ClosedComponent(what))
        seg.close()

    def __enter__(self) -> "OpLineageStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def flush_to(self, directory: str) -> int:
        """Persist the store under ``directory``; returns bytes written."""
        import os

        return self.flush_segment(os.path.join(directory, self.SEGMENT_FILENAME))

    def load_from(self, directory: str) -> None:
        """Replace every component with its persisted counterpart."""
        import os

        path = os.path.join(directory, self.SEGMENT_FILENAME)
        if seglib.segment_files(path):
            self.load_segment(path)
        else:
            self.load_legacy_components(directory)

    def load_legacy_components(self, directory: str) -> None:
        """Load a pre-segment flush: one ``<component>.bin`` per component
        (each loader sniffs the magic, so bare legacy files and segment
        files both parse) — kept so directories flushed before the
        segmented format still serve."""
        import os

        for name, component in self._components().items():
            path = os.path.join(directory, f"{name}.bin")
            if isinstance(component, HashStore):
                self._set_component(name, HashStore.load(path, name))
            elif isinstance(component, BlobStore):
                self._set_component(name, BlobStore.load(path, name))
            else:
                self._set_component(
                    name, RegionEntryTable.load(path, component.key_shape)
                )

    # -- generational merge (compaction writer) -------------------------------

    def _check_absorb(self, other: "OpLineageStore") -> None:
        if (
            other.strategy != self.strategy
            or other.out_shape != self.out_shape
            or other.in_shapes != self.in_shapes
        ):
            raise StorageError(
                f"cannot merge store ({other.node!r}, {other.strategy.label}, "
                f"out={other.out_shape}) into ({self.node!r}, "
                f"{self.strategy.label}, out={self.out_shape}): layouts differ"
            )

    def absorb(self, other: "OpLineageStore") -> None:
        """Merge every entry of ``other`` (same layout and shapes) into this
        store — the compaction merge writer.

        Works at the component level: hash segments and entry tables
        concatenate (the multimap/entry-set contracts make union exactly
        concatenation), blob heaps append with the id base returned by
        :meth:`~repro.storage.kvstore.BlobStore.extend_from` re-basing the
        refs that point into them.  All absorbed bytes are copied, so the
        merged store stays valid after the generations' segments close.
        Overridden per layout."""
        raise LineageError(f"{self.strategy.label} store cannot absorb generations")

    # -- matched-orientation reads -------------------------------------------

    def backward_full(
        self, qpacked: np.ndarray, only_input: int | None = None
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """``(matched, per_input)`` lineage of the query cells.

        ``only_input`` restricts value decoding to one input's field — the
        other slots of ``per_input`` come back empty — so a query step that
        follows a single edge never materialises the sibling inputs' cells.
        """
        raise LineageError(f"{self.strategy.label} cannot serve backward_full")

    def forward_full(self, qpacked: np.ndarray, input_idx: int) -> np.ndarray:
        raise LineageError(f"{self.strategy.label} cannot serve forward_full")

    def backward_payload(
        self, qpacked: np.ndarray
    ) -> tuple[np.ndarray, list[tuple[np.ndarray, bytes]]]:
        raise LineageError(f"{self.strategy.label} cannot serve backward_payload")

    def backward_payload_rows(
        self, qpacked: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, list[bytes]] | None:
        """Row-per-hit variant ``(matched, hit_cells, payloads)`` for layouts
        whose entries are single cells; None when entries may hold many."""
        return None

    # -- mismatched-orientation reads (cursor scans) ------------------------------

    def scan_forward_full(
        self, qpacked: np.ndarray, input_idx: int, ticker=None
    ) -> np.ndarray:
        raise LineageError(f"{self.strategy.label} cannot serve scan_forward_full")

    def scan_backward_full(
        self, qpacked: np.ndarray, ticker=None
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        raise LineageError(f"{self.strategy.label} cannot serve scan_backward_full")

    def payload_entries(self) -> tuple[np.ndarray, np.ndarray, bytes, np.ndarray]:
        """Columnar view of every payload entry: ``(keys, koff, vbuf, voff)``
        where entry ``e`` owns key cells ``keys[koff[e]:koff[e+1]]`` and
        payload bytes ``vbuf[voff[e]:voff[e+1]]``.

        This replaces the old per-entry cursor: a mismatched payload scan
        batches over the columns (one vectorised key-length split, one
        ``map_p`` batch for the single-cell entries) instead of looping a
        Python generator over every stored entry.
        """
        raise LineageError(f"{self.strategy.label} stores no payload entries")

    def overridden_keys(self) -> np.ndarray:
        raise LineageError(f"{self.strategy.label} stores no payload entries")

    # -- accounting -----------------------------------------------------------------

    def disk_bytes(self) -> int:
        raise NotImplementedError

    @property
    def n_entries(self) -> int:
        raise NotImplementedError


class _FullBackwardOne(OpLineageStore):
    """``<-FullOne``: hash key = output cell, value = inlined input cell
    (one-to-one bulk writes) or a reference into the shared entry blob."""

    def __init__(self, node, strategy, out_shape, in_shapes):
        super().__init__(node, strategy, out_shape, in_shapes)
        self._direct = [HashStore(f"{node}.direct{i}") for i in range(self.arity)]
        self._refs = HashStore(f"{node}.refs")
        self._blobs = BlobStore(f"{node}.blobs")

    def _hash_stores(self):
        return [*self._direct, self._refs]

    def _components(self):
        out = {f"direct{i}": s for i, s in enumerate(self._direct)}
        out["refs"] = self._refs
        out["blobs"] = self._blobs
        return out

    def _set_component(self, name, obj):
        if name.startswith("direct"):
            self._direct[int(name[6:])] = obj
        elif name == "refs":
            self._refs = obj
        else:
            self._blobs = obj

    def _filter_key_arrays(self):
        keys = [s.keys_array() for s in self._direct]
        keys.append(self._refs.keys_array())
        return {"b": (_concat(keys), self.out_shape)}

    def ingest(self, sink: BufferSink) -> None:
        for batch in sink.elementwise:
            out_packed = C.pack_coords(batch.outcells, self.out_shape)
            for i, cells in enumerate(batch.incells):
                in_packed = C.pack_coords(cells, self.in_shapes[i])
                self._direct[i].put_many_fixed(out_packed, in_packed)
        for pair in sink.pairs:
            if pair.is_payload:
                continue
            value = encode_full_value(
                [
                    C.pack_coords(cells, self.in_shapes[i])
                    for i, cells in enumerate(pair.incells)
                ]
            )
            ref = self._blobs.append(value)
            out_packed = C.pack_coords(pair.outcells, self.out_shape)
            self._refs.put_many_fixed(out_packed, np.full(out_packed.size, ref))
        for rb in sink.region_batches:
            if rb.is_payload:
                continue
            vbuf, vlens = encode_full_values(
                [
                    C.pack_coords(cells, self.in_shapes[i])
                    for i, cells in enumerate(rb.in_coords)
                ],
                rb.in_offsets,
            )
            ids = self._blobs.append_buffer(vbuf, vlens)
            out_packed = C.pack_coords(rb.out_coords, self.out_shape)
            self._refs.put_many_fixed(
                out_packed, np.repeat(ids, np.diff(rb.out_offsets))
            )

    def absorb(self, other: "OpLineageStore") -> None:
        self._check_absorb(other)
        for i in range(self.arity):
            self._direct[i].extend_from(other._direct[i])
        base = self._blobs.extend_from(other._blobs)
        keys, refs = other._refs.items_fixed()
        if keys.size:
            self._refs.put_many_fixed(keys, refs + base)

    def backward_full(self, qpacked, only_input=None):
        matched = np.zeros(qpacked.size, dtype=bool)
        per_input: list[list[np.ndarray]] = [[] for _ in range(self.arity)]
        for i, store in enumerate(self._direct):
            qidx, cells = store.lookup_refs(qpacked)
            if qidx.size:
                matched[qidx] = True
                if only_input is None or i == only_input:
                    per_input[i].append(cells)
        qidx, refs = self._refs.lookup_refs(qpacked)
        if qidx.size:
            matched[qidx] = True
            for ref in np.unique(refs):
                blob = self._blobs.get(int(ref))
                if only_input is None:
                    for i, cells in enumerate(decode_full_value(blob, self.arity)):
                        per_input[i].append(cells)
                else:
                    per_input[only_input].append(
                        _decode_value_field(blob, only_input)
                    )
        return matched, [_concat(parts) for parts in per_input]

    def warm_lowered_tables(self) -> None:
        for i in range(self.arity):
            self._blobs.batch_probe(field=i).lowered_tables()

    def lowered_ready(self) -> bool:
        if len(self._blobs) == 0:
            return True
        return set(range(self.arity)) <= self._blobs.probe_fields()

    def scan_forward_full(self, qpacked, input_idx, ticker=None):
        query = np.sort(qpacked)
        parts: list[np.ndarray] = []
        out_keys, in_cells = self._direct[input_idx].items_fixed()
        if out_keys.size:
            parts.append(out_keys[C.isin_sorted(in_cells, query)])
        if ticker is not None:
            ticker()
        ref_keys, refs = self._refs.items_fixed()
        if ref_keys.size:
            # one vectorised pass over the blob heap; refs are blob ids, so
            # the per-blob verdicts index straight into the ref rows
            verdicts = self._blobs.batch_probe(
                field=input_idx, ticker=ticker
            ).contains_any(query, ticker)
            parts.append(ref_keys[verdicts[refs]])
        return np.unique(_concat(parts))

    def disk_bytes(self) -> int:
        total = self._refs.disk_bytes() + self._blobs.disk_bytes()
        return total + sum(s.disk_bytes() for s in self._direct)

    @property
    def n_entries(self) -> int:
        return self._refs.n_entries + sum(s.n_entries for s in self._direct)


class _FullBackwardMany(OpLineageStore):
    """``<-FullMany``: one entry per region pair, keyed by the output cell
    set, R-tree indexed."""

    def __init__(self, node, strategy, out_shape, in_shapes):
        super().__init__(node, strategy, out_shape, in_shapes)
        self._table = RegionEntryTable(out_shape)

    def _entry_tables(self):
        return [self._table]

    def _components(self):
        return {"table": self._table}

    def _set_component(self, name, obj):
        self._table = obj

    def _filter_key_arrays(self):
        return {"b": (self._table.all_key_cells(), self.out_shape)}

    def ingest(self, sink: BufferSink) -> None:
        for batch in sink.elementwise:
            out_packed = C.pack_coords(batch.outcells, self.out_shape)
            encoded = [
                encode_singleton_int_arrays(C.pack_coords(cells, self.in_shapes[i]))
                for i, cells in enumerate(batch.incells)
            ]
            rows = np.concatenate(encoded, axis=1)
            lengths = np.full(out_packed.size, rows.shape[1], dtype=np.int64)
            self._table.add_singleton_entries(out_packed, rows.tobytes(), lengths)
        for pair in sink.pairs:
            if pair.is_payload:
                continue
            value = encode_full_value(
                [
                    C.pack_coords(cells, self.in_shapes[i])
                    for i, cells in enumerate(pair.incells)
                ]
            )
            self._table.add_entry(C.pack_coords(pair.outcells, self.out_shape), value)
        for rb in sink.region_batches:
            if rb.is_payload:
                continue
            vbuf, vlens = encode_full_values(
                [
                    C.pack_coords(cells, self.in_shapes[i])
                    for i, cells in enumerate(rb.in_coords)
                ],
                rb.in_offsets,
            )
            self._table.add_entries(
                C.pack_coords(rb.out_coords, self.out_shape),
                np.diff(rb.out_offsets),
                vbuf,
                vlens,
            )

    def absorb(self, other: "OpLineageStore") -> None:
        self._check_absorb(other)
        self._table.extend_columns(*other._table.columns())

    def backward_full(self, qpacked, only_input=None):
        query_sorted = np.sort(qpacked)
        coords = C.unpack_coords(qpacked, self.out_shape)
        per_input: list[list[np.ndarray]] = [[] for _ in range(self.arity)]
        candidates = self.candidate_entries(coords)
        hit, hit_cells = self._table.match_keys(candidates, query_sorted)
        fields = range(self.arity) if only_input is None else (only_input,)
        for entry_id in candidates[hit]:
            for i in fields:
                per_input[i].append(self._table.value_cells(int(entry_id), field=i))
        matched = np.isin(qpacked, hit_cells)
        return matched, [_concat(parts) for parts in per_input]

    def candidate_entries(self, coords: np.ndarray) -> np.ndarray:
        return self._table.candidate_entries(coords)

    def warm_lowered_tables(self) -> None:
        for i in range(self.arity):
            self._table.batch_probe(field=i).lowered_tables()

    def lowered_ready(self) -> bool:
        if self._table.n_entries == 0:
            return True
        return set(range(self.arity)) <= self._table.probe_fields()

    def scan_forward_full(self, qpacked, input_idx, ticker=None):
        query = np.sort(qpacked)
        verdicts = self._table.batch_probe(
            field=input_idx, ticker=ticker
        ).contains_any(query, ticker)
        return np.unique(self._table.entries_keys(np.flatnonzero(verdicts)))

    def disk_bytes(self) -> int:
        return self._table.disk_bytes()

    @property
    def n_entries(self) -> int:
        return self._table.n_entries


class _FullForwardOne(OpLineageStore):
    """``->FullOne``: per input array, hash key = input cell."""

    def __init__(self, node, strategy, out_shape, in_shapes):
        super().__init__(node, strategy, out_shape, in_shapes)
        self._direct = [HashStore(f"{node}.fdirect{i}") for i in range(self.arity)]
        self._refs = [HashStore(f"{node}.frefs{i}") for i in range(self.arity)]
        self._blobs = BlobStore(f"{node}.fblobs")

    def _hash_stores(self):
        return [*self._direct, *self._refs]

    def _components(self):
        out = {f"fdirect{i}": s for i, s in enumerate(self._direct)}
        out.update({f"frefs{i}": s for i, s in enumerate(self._refs)})
        out["fblobs"] = self._blobs
        return out

    def _set_component(self, name, obj):
        if name.startswith("fdirect"):
            self._direct[int(name[7:])] = obj
        elif name.startswith("frefs"):
            self._refs[int(name[5:])] = obj
        else:
            self._blobs = obj

    def _filter_key_arrays(self):
        return {
            f"f{i}": (
                _concat([self._direct[i].keys_array(), self._refs[i].keys_array()]),
                self.in_shapes[i],
            )
            for i in range(self.arity)
        }

    def ingest(self, sink: BufferSink) -> None:
        for batch in sink.elementwise:
            out_packed = C.pack_coords(batch.outcells, self.out_shape)
            for i, cells in enumerate(batch.incells):
                in_packed = C.pack_coords(cells, self.in_shapes[i])
                self._direct[i].put_many_fixed(in_packed, out_packed)
        for pair in sink.pairs:
            if pair.is_payload:
                continue
            out_packed = np.sort(C.pack_coords(pair.outcells, self.out_shape))
            ref = self._blobs.append(ser.encode_int_array(out_packed))
            for i, cells in enumerate(pair.incells):
                in_packed = C.pack_coords(cells, self.in_shapes[i])
                self._refs[i].put_many_fixed(in_packed, np.full(in_packed.size, ref))
        for rb in sink.region_batches:
            if rb.is_payload:
                continue
            vbuf, vlens = _encode_sorted_segmented(
                C.pack_coords(rb.out_coords, self.out_shape), rb.out_offsets
            )
            ids = self._blobs.append_buffer(vbuf, vlens)
            for i, cells in enumerate(rb.in_coords):
                in_packed = C.pack_coords(cells, self.in_shapes[i])
                self._refs[i].put_many_fixed(
                    in_packed, np.repeat(ids, np.diff(rb.in_offsets[i]))
                )

    def absorb(self, other: "OpLineageStore") -> None:
        self._check_absorb(other)
        base = self._blobs.extend_from(other._blobs)
        for i in range(self.arity):
            self._direct[i].extend_from(other._direct[i])
            keys, refs = other._refs[i].items_fixed()
            if keys.size:
                self._refs[i].put_many_fixed(keys, refs + base)

    def forward_full(self, qpacked, input_idx):
        parts: list[np.ndarray] = []
        qidx, cells = self._direct[input_idx].lookup_refs(qpacked)
        if qidx.size:
            parts.append(cells)
        qidx, refs = self._refs[input_idx].lookup_refs(qpacked)
        for ref in np.unique(refs):
            arr, _ = ser.decode_int_array(self._blobs.get(int(ref)))
            parts.append(arr)
        return _concat(parts)

    def warm_lowered_tables(self) -> None:
        self._blobs.batch_probe().lowered_tables()

    def lowered_ready(self) -> bool:
        return len(self._blobs) == 0 or 0 in self._blobs.probe_fields()

    def scan_backward_full(self, qpacked, ticker=None):
        query = np.sort(qpacked)
        matched_cells: list[np.ndarray] = []
        per_input: list[list[np.ndarray]] = [[] for _ in range(self.arity)]
        # one vectorised intersect pass over the shared blob heap, reused by
        # every input's ref store (hit_ids ascending, blobs keyed by id)
        hit_ids, intersections = self._blobs.batch_probe().intersect(query, ticker)
        inter_by_blob = dict(zip(hit_ids.tolist(), intersections))
        for i in range(self.arity):
            in_keys, out_cells = self._direct[i].items_fixed()
            if in_keys.size:
                member = C.isin_sorted(out_cells, query)
                if member.any():
                    matched_cells.append(out_cells[member])
                    per_input[i].append(in_keys[member])
            in_keys, refs = self._refs[i].items_fixed()
            if in_keys.size and hit_ids.size:
                member = C.isin_sorted(refs, hit_ids)
                if member.any():
                    per_input[i].append(in_keys[member])
                    matched_cells.extend(
                        inter_by_blob[int(r)] for r in np.unique(refs[member])
                    )
            if ticker is not None:
                ticker()
        matched = np.isin(qpacked, _concat(matched_cells))
        return matched, [_concat(parts) for parts in per_input]

    def disk_bytes(self) -> int:
        total = self._blobs.disk_bytes()
        total += sum(s.disk_bytes() for s in self._direct)
        total += sum(s.disk_bytes() for s in self._refs)
        return total

    @property
    def n_entries(self) -> int:
        return sum(s.n_entries for s in self._direct) + sum(
            s.n_entries for s in self._refs
        )


class _FullForwardMany(OpLineageStore):
    """``->FullMany``: per input array, one R-tree-indexed entry per pair."""

    def __init__(self, node, strategy, out_shape, in_shapes):
        super().__init__(node, strategy, out_shape, in_shapes)
        self._tables = [RegionEntryTable(shape) for shape in self.in_shapes]

    def _entry_tables(self):
        return list(self._tables)

    def _components(self):
        return {f"table{i}": t for i, t in enumerate(self._tables)}

    def _set_component(self, name, obj):
        self._tables[int(name[5:])] = obj

    def _filter_key_arrays(self):
        return {
            f"f{i}": (table.all_key_cells(), self.in_shapes[i])
            for i, table in enumerate(self._tables)
        }

    def ingest(self, sink: BufferSink) -> None:
        for batch in sink.elementwise:
            out_packed = C.pack_coords(batch.outcells, self.out_shape)
            rows = encode_singleton_int_arrays(out_packed)
            lengths = np.full(out_packed.size, rows.shape[1], dtype=np.int64)
            for i, cells in enumerate(batch.incells):
                in_packed = C.pack_coords(cells, self.in_shapes[i])
                self._tables[i].add_singleton_entries(
                    in_packed, rows.tobytes(), lengths
                )
        for pair in sink.pairs:
            if pair.is_payload:
                continue
            value = ser.encode_int_array(
                np.sort(C.pack_coords(pair.outcells, self.out_shape))
            )
            for i, cells in enumerate(pair.incells):
                self._tables[i].add_entry(
                    C.pack_coords(cells, self.in_shapes[i]), value
                )
        for rb in sink.region_batches:
            if rb.is_payload:
                continue
            vbuf, vlens = _encode_sorted_segmented(
                C.pack_coords(rb.out_coords, self.out_shape), rb.out_offsets
            )
            vstarts = np.zeros(vlens.size + 1, dtype=np.int64)
            np.cumsum(vlens, out=vstarts[1:])
            for i, cells in enumerate(rb.in_coords):
                in_counts = np.diff(rb.in_offsets[i])
                keep = in_counts > 0
                if not keep.any():
                    # pairs with no cells in this input store no forward keys
                    continue
                in_packed = C.pack_coords(cells, self.in_shapes[i])
                if keep.all():
                    buf_i, lens_i = vbuf, vlens
                else:
                    lens_i = vlens[keep]
                    buf_i = _gather_slices(
                        vbuf, vstarts[:-1][keep], lens_i, int(lens_i.sum())
                    )
                    in_counts = in_counts[keep]
                self._tables[i].add_entries(in_packed, in_counts, buf_i, lens_i)

    def absorb(self, other: "OpLineageStore") -> None:
        self._check_absorb(other)
        for i, table in enumerate(self._tables):
            table.extend_columns(*other._tables[i].columns())

    def forward_full(self, qpacked, input_idx):
        table = self._tables[input_idx]
        coords = C.unpack_coords(qpacked, self.in_shapes[input_idx])
        query_sorted = np.sort(qpacked)
        parts: list[np.ndarray] = []
        for entry_id in table.candidate_entries(coords):
            keys = table.entry_keys(int(entry_id))
            if C.isin_sorted(keys, query_sorted).any():
                arr, _ = ser.decode_int_array(table.entry_value(int(entry_id)))
                parts.append(arr)
        return _concat(parts)

    def warm_lowered_tables(self) -> None:
        for table in self._tables:
            table.batch_probe().lowered_tables()

    def lowered_ready(self) -> bool:
        return all(
            table.n_entries == 0 or 0 in table.probe_fields()
            for table in self._tables
        )

    def scan_backward_full(self, qpacked, ticker=None):
        query = np.sort(qpacked)
        matched_cells: list[np.ndarray] = []
        per_input: list[list[np.ndarray]] = [[] for _ in range(self.arity)]
        for i, table in enumerate(self._tables):
            hit_ids, intersections = table.batch_probe().intersect(query, ticker)
            if hit_ids.size:
                matched_cells.extend(intersections)
                per_input[i].append(table.entries_keys(hit_ids))
        matched = np.isin(qpacked, _concat(matched_cells))
        return matched, [_concat(parts) for parts in per_input]

    def disk_bytes(self) -> int:
        return sum(t.disk_bytes() for t in self._tables)

    @property
    def n_entries(self) -> int:
        return sum(t.n_entries for t in self._tables)


class _PayBackwardOne(OpLineageStore):
    """``<-PayOne``: hash key = output cell, value = duplicated payload.

    Serves both ``Pay`` and ``Comp`` strategies (composite lineage stores
    its payload overrides the same way, §V-A.4).
    """

    def __init__(self, node, strategy, out_shape, in_shapes):
        super().__init__(node, strategy, out_shape, in_shapes)
        self._hash = HashStore(f"{node}.pay")

    def _hash_stores(self):
        return [self._hash]

    def _components(self):
        return {"pay": self._hash}

    def _set_component(self, name, obj):
        self._hash = obj

    def _filter_key_arrays(self):
        return {"b": (self._hash.keys_array(), self.out_shape)}

    def ingest(self, sink: BufferSink) -> None:
        for batch in sink.payload_batches:
            out_packed = C.pack_coords(batch.outcells, self.out_shape)
            if isinstance(batch.payloads, np.ndarray):
                width = batch.payloads.shape[1]
                offsets = np.arange(out_packed.size + 1, dtype=np.int64) * width
                self._hash.put_many(out_packed, batch.payloads.tobytes(), offsets)
            else:
                buf = b"".join(batch.payloads)
                lengths = np.asarray([len(p) for p in batch.payloads], dtype=np.int64)
                offsets = np.zeros(out_packed.size + 1, dtype=np.int64)
                np.cumsum(lengths, out=offsets[1:])
                self._hash.put_many(out_packed, buf, offsets)
        for pair in sink.pairs:
            if not pair.is_payload:
                continue
            out_packed = C.pack_coords(pair.outcells, self.out_shape)
            self._hash.put_many_shared(out_packed, pair.payload)
        for rb in sink.region_batches:
            if not rb.is_payload:
                continue
            out_packed = C.pack_coords(rb.out_coords, self.out_shape)
            out_counts = np.diff(rb.out_offsets)
            # duplicate each pair's payload once per output cell (PayOne)
            rep_lens = np.repeat(np.diff(rb.payload_offsets), out_counts)
            buf = _gather_slices(
                rb.payloads,
                np.repeat(rb.payload_offsets[:-1], out_counts),
                rep_lens,
                int(rep_lens.sum()),
            )
            offsets = np.zeros(out_packed.size + 1, dtype=np.int64)
            np.cumsum(rep_lens, out=offsets[1:])
            self._hash.put_many(out_packed, buf, offsets)

    def absorb(self, other: "OpLineageStore") -> None:
        self._check_absorb(other)
        self._hash.extend_from(other._hash)

    def backward_payload(self, qpacked):
        matched = np.zeros(qpacked.size, dtype=bool)
        qidx, values = self._hash.lookup_many(qpacked)
        groups: dict[bytes, list[int]] = {}
        for pos, payload in zip(qidx, values):
            matched[pos] = True
            groups.setdefault(payload, []).append(int(qpacked[pos]))
        pairs = [
            (np.asarray(cells, dtype=np.int64), payload)
            for payload, cells in groups.items()
        ]
        return matched, pairs

    def backward_payload_rows(self, qpacked):
        matched = np.zeros(qpacked.size, dtype=bool)
        qidx, values = self._hash.lookup_many(qpacked)
        if qidx.size:
            matched[qidx] = True
        return matched, qpacked[qidx], values

    def payload_entries(self):
        keys, voff, vbuf = self._hash.columns()
        koff = np.arange(keys.size + 1, dtype=np.int64)  # one key cell per entry
        return keys, koff, vbuf, voff

    def overridden_keys(self) -> np.ndarray:
        return np.unique(self._hash.keys_array())

    def disk_bytes(self) -> int:
        return self._hash.disk_bytes()

    @property
    def n_entries(self) -> int:
        return self._hash.n_entries


class _PayBackwardMany(OpLineageStore):
    """``<-PayMany``: one entry per payload pair, R-tree indexed."""

    def __init__(self, node, strategy, out_shape, in_shapes):
        super().__init__(node, strategy, out_shape, in_shapes)
        self._table = RegionEntryTable(out_shape)

    def _entry_tables(self):
        return [self._table]

    def _components(self):
        return {"paytable": self._table}

    def _set_component(self, name, obj):
        self._table = obj

    def _filter_key_arrays(self):
        return {"b": (self._table.all_key_cells(), self.out_shape)}

    def ingest(self, sink: BufferSink) -> None:
        for batch in sink.payload_batches:
            out_packed = C.pack_coords(batch.outcells, self.out_shape)
            if isinstance(batch.payloads, np.ndarray):
                width = batch.payloads.shape[1]
                lengths = np.full(out_packed.size, width, dtype=np.int64)
                self._table.add_singleton_entries(
                    out_packed, batch.payloads.tobytes(), lengths
                )
            else:
                buf = b"".join(batch.payloads)
                lengths = np.asarray([len(p) for p in batch.payloads], dtype=np.int64)
                self._table.add_singleton_entries(out_packed, buf, lengths)
        for pair in sink.pairs:
            if not pair.is_payload:
                continue
            self._table.add_entry(
                C.pack_coords(pair.outcells, self.out_shape), pair.payload
            )
        for rb in sink.region_batches:
            if not rb.is_payload:
                continue
            self._table.add_entries(
                C.pack_coords(rb.out_coords, self.out_shape),
                np.diff(rb.out_offsets),
                rb.payloads,
                np.diff(rb.payload_offsets),
            )

    def absorb(self, other: "OpLineageStore") -> None:
        self._check_absorb(other)
        self._table.extend_columns(*other._table.columns())

    def backward_payload(self, qpacked):
        query_sorted = np.sort(qpacked)
        coords = C.unpack_coords(qpacked, self.out_shape)
        pairs: list[tuple[np.ndarray, bytes]] = []
        matched_cells: list[np.ndarray] = []
        for entry_id in self._table.candidate_entries(coords):
            keys = self._table.entry_keys(int(entry_id))
            hit = keys[C.isin_sorted(keys, query_sorted)]
            if hit.size == 0:
                continue
            matched_cells.append(hit)
            pairs.append((hit, self._table.entry_value(int(entry_id))))
        matched = np.isin(qpacked, _concat(matched_cells))
        return matched, pairs

    def payload_entries(self):
        return self._table.columns()

    def overridden_keys(self) -> np.ndarray:
        return np.unique(self._table.all_key_cells())

    def disk_bytes(self) -> int:
        return self._table.disk_bytes()

    @property
    def n_entries(self) -> int:
        return self._table.n_entries


def _concat(parts: list[np.ndarray]) -> np.ndarray:
    parts = [p for p in parts if p.size]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)


def _decode_value_field(blob: bytes, field: int) -> np.ndarray:
    """Decode one cell-set field of a value blob, skipping (not decoding)
    the fields before it."""
    offset = codecs.skip_fields(blob, 0, len(blob), field)
    cells, _ = codecs.decode_cells(blob, offset)
    return cells


def make_store(
    node: str,
    strategy: StorageStrategy,
    out_shape: tuple[int, ...],
    in_shapes: tuple[tuple[int, ...], ...],
) -> OpLineageStore:
    """Factory mapping a storage strategy to its layout implementation."""
    if not strategy.stores_pairs:
        raise LineageError(f"{strategy.label} does not materialise lineage")
    if strategy.mode in (LineageMode.PAY, LineageMode.COMP):
        cls = (
            _PayBackwardOne
            if strategy.encoding is EncodingKind.ONE
            else _PayBackwardMany
        )
        return cls(node, strategy, out_shape, in_shapes)
    if strategy.orientation is Orientation.BACKWARD:
        cls = (
            _FullBackwardOne
            if strategy.encoding is EncodingKind.ONE
            else _FullBackwardMany
        )
    else:
        cls = (
            _FullForwardOne
            if strategy.encoding is EncodingKind.ONE
            else _FullForwardMany
        )
    return cls(node, strategy, out_shape, in_shapes)
