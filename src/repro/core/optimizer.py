"""Lineage-strategy optimizer (§VII).

Chooses, per operator, a set of storage strategies minimising the expected
query-workload cost subject to user disk/runtime budgets:

.. math::

    \\min_x \\sum_i p_i \\big( \\min_{j | x_{ij}=1} q_{ij} \\big)
    + \\epsilon \\sum_{ij} (disk_{ij} + \\beta\\, run_{ij})\\, x_{ij}

The inner ``min`` is linearised with per-(operator, query-class) assignment
variables ``y`` (``sum_j y = 1``, ``y <= x``); the resulting mixed-integer
program is solved with scipy's HiGHS backend (standing in for the paper's
GNU Linear Programming Kit), with a greedy fallback when MILP is
unavailable.  Heuristic pruning mirrors the paper: strategies that alone
bust a budget are dropped, as are stored strategies whose index orientation
matches no query in the workload; mapping functions are always kept (they
are free).

The disk budget is enforced against :meth:`CostModel.disk_bytes`, which is
codec-aware: operators whose lineage compresses well (interval-coded
convolution/reshape regions, bitmap-coded dense-but-ragged masks) are
budgeted at their sampled compressed footprint rather than a flat
bytes-per-cell constant, so the optimizer can afford to materialise
strategies the old estimate would have pruned.  Query costs are likewise
batch-aware: mismatched-orientation access is priced at the vectorised
batch-scan rate (``batch_entry_s``) instead of the per-entry cursor rate,
which keeps single-orientation Full stores competitive for mixed workloads
instead of forcing a second, redundant store within the budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.costmodel import CostModel
from repro.core.model import Direction, LineageQuery
from repro.core.modes import (
    ALL_STRATEGIES,
    BLACKBOX,
    MAP,
    LineageMode,
    Orientation,
    StorageStrategy,
)
from repro.errors import OptimizationError
from repro.ops.base import Operator

__all__ = ["WorkloadProfile", "OptimizationResult", "StrategyOptimizer", "candidate_strategies"]


def candidate_strategies(op: Operator) -> list[StorageStrategy]:
    """Every storage strategy the operator's supported modes allow."""
    supported = op.supported_modes() | {LineageMode.BLACKBOX}
    return [s for s in ALL_STRATEGIES if s.mode in supported]


@dataclass
class WorkloadProfile:
    """Per-node access probabilities derived from a sample query workload.

    ``weights[node][direction]`` is the probability mass of workload queries
    whose path touches ``node`` in that direction; ``cells`` is the mean
    query-cell count for sizing cost estimates.
    """

    weights: dict[str, dict[Direction, float]] = field(default_factory=dict)
    cells: float = 100.0

    @classmethod
    def from_queries(
        cls, queries: list[LineageQuery | tuple[LineageQuery, float]]
    ) -> "WorkloadProfile":
        weights: dict[str, dict[Direction, float]] = {}
        total = 0.0
        cell_counts: list[float] = []
        for item in queries:
            query, weight = item if isinstance(item, tuple) else (item, 1.0)
            total += weight
            cell_counts.append(float(query.cells.shape[0]))
            for step in query.path:
                node_weights = weights.setdefault(step.node, {})
                node_weights[query.direction] = (
                    node_weights.get(query.direction, 0.0) + weight
                )
        if total > 0:
            for node_weights in weights.values():
                for direction in list(node_weights):
                    node_weights[direction] /= total
        cells = float(np.mean(cell_counts)) if cell_counts else 100.0
        return cls(weights=weights, cells=cells)

    def directions_for(self, node: str) -> dict[Direction, float]:
        return self.weights.get(node, {})


@dataclass
class OptimizationResult:
    """The chosen plan plus the optimizer's own accounting."""

    plan: dict[str, list[StorageStrategy]]
    est_disk_bytes: float
    est_runtime_seconds: float
    est_query_seconds: float
    used_ilp: bool
    status: str = "optimal"

    def describe(self) -> str:
        lines = [
            f"status={self.status} ilp={self.used_ilp} "
            f"disk={self.est_disk_bytes / 1e6:.2f}MB "
            f"runtime=+{self.est_runtime_seconds:.2f}s "
            f"query~{self.est_query_seconds * 1e3:.2f}ms"
        ]
        for node in sorted(self.plan):
            labels = ", ".join(s.label for s in self.plan[node])
            lines.append(f"  {node}: {labels}")
        return "\n".join(lines)


class StrategyOptimizer:
    """Builds and solves the strategy-selection MILP (see module docstring)."""

    def __init__(self, cost_model: CostModel):
        self.cost_model = cost_model

    # -- public entry -----------------------------------------------------------

    def optimize(
        self,
        operators: dict[str, Operator],
        workload: WorkloadProfile,
        max_disk_bytes: float,
        max_runtime_seconds: float | None = None,
        beta: float = 1.0,
        eps: float = 1e-9,
        pinned: dict[str, list[StorageStrategy]] | None = None,
    ) -> OptimizationResult:
        pinned = pinned or {}
        nodes, cands, pins = self._build_candidates(operators, workload, pinned, max_disk_bytes, max_runtime_seconds)
        if not nodes:
            return OptimizationResult({}, 0.0, 0.0, 0.0, used_ilp=False, status="empty")
        try:
            plan, used_ilp = self._solve_ilp(
                nodes, cands, pins, workload, max_disk_bytes, max_runtime_seconds, beta, eps
            )
        except OptimizationError:
            plan, used_ilp = (
                self._solve_greedy(
                    nodes, cands, pins, workload, max_disk_bytes, max_runtime_seconds
                ),
                False,
            )
        return self._finalize(operators, plan, workload, used_ilp)

    # -- candidate construction ----------------------------------------------------

    def _build_candidates(
        self,
        operators: dict[str, Operator],
        workload: WorkloadProfile,
        pinned: dict[str, list[StorageStrategy]],
        max_disk: float,
        max_run: float | None,
    ):
        nodes: list[str] = []
        cands: dict[str, list[StorageStrategy]] = {}
        pins: dict[str, list[StorageStrategy]] = {}
        for node, op in operators.items():
            options = candidate_strategies(op)
            directions = workload.directions_for(node)
            kept: list[StorageStrategy] = []
            for strategy in options:
                if strategy.mode is LineageMode.BLACKBOX:
                    kept.append(strategy)
                    continue
                if strategy.mode is LineageMode.MAP:
                    kept.append(strategy)
                    continue
                if directions and not self._properly_indexed(strategy, directions):
                    continue
                if self.cost_model.disk_bytes(node, strategy) > max_disk:
                    continue
                if (
                    max_run is not None
                    and self.cost_model.write_seconds(node, strategy) > max_run
                ):
                    continue
                kept.append(strategy)
            for strategy in pinned.get(node, []):
                if strategy not in kept:
                    kept.append(strategy)
            nodes.append(node)
            cands[node] = kept
            pins[node] = list(pinned.get(node, []))
            # Mapping functions are free and dominate (§VII: "the optimizer
            # also picks mapping functions over all other classes").
            if MAP in kept and MAP not in pins[node]:
                pins[node].append(MAP)
        return nodes, cands, pins

    @staticmethod
    def _properly_indexed(
        strategy: StorageStrategy, directions: dict[Direction, float]
    ) -> bool:
        wants_backward = directions.get(Direction.BACKWARD, 0.0) > 0
        wants_forward = directions.get(Direction.FORWARD, 0.0) > 0
        if strategy.orientation is Orientation.BACKWARD:
            return wants_backward or strategy.mode in (LineageMode.PAY, LineageMode.COMP)
        return wants_forward

    # -- cost helpers -----------------------------------------------------------------

    def _query_cost(
        self, node: str, strategy: StorageStrategy, direction: Direction, cells: float
    ) -> float:
        return self.cost_model.query_seconds(
            node, strategy, direction is Direction.BACKWARD, int(cells)
        )

    # -- MILP ----------------------------------------------------------------------------

    def _solve_ilp(
        self,
        nodes: list[str],
        cands: dict[str, list[StorageStrategy]],
        pins: dict[str, list[StorageStrategy]],
        workload: WorkloadProfile,
        max_disk: float,
        max_run: float | None,
        beta: float,
        eps: float,
    ) -> tuple[dict[str, list[StorageStrategy]], bool]:
        try:
            from scipy.optimize import Bounds, LinearConstraint, milp
        except ImportError as exc:  # pragma: no cover - scipy is a dependency
            raise OptimizationError(f"scipy.optimize.milp unavailable: {exc}") from exc

        x_index: dict[tuple[str, StorageStrategy], int] = {}
        for node in nodes:
            for strategy in cands[node]:
                x_index[(node, strategy)] = len(x_index)
        n_x = len(x_index)

        classes: list[tuple[str, Direction, float]] = []
        for node in nodes:
            for direction, weight in workload.directions_for(node).items():
                if weight > 0:
                    classes.append((node, direction, weight))
        y_index: dict[tuple[int, StorageStrategy], int] = {}
        for ci, (node, _, _) in enumerate(classes):
            for strategy in cands[node]:
                y_index[(ci, strategy)] = n_x + len(y_index)
        n_vars = n_x + len(y_index)

        cost = np.zeros(n_vars)
        for (node, strategy), xi in x_index.items():
            disk = self.cost_model.disk_bytes(node, strategy)
            run = self.cost_model.write_seconds(node, strategy)
            cost[xi] = eps * (disk + beta * run)
        for (ci, strategy), yi in y_index.items():
            node, direction, weight = classes[ci]
            cost[yi] = weight * self._query_cost(node, strategy, direction, workload.cells)

        rows, lbs, ubs = [], [], []

        def add_row(row, lb, ub):
            rows.append(row)
            lbs.append(lb)
            ubs.append(ub)

        # Each accessed (node, class) must be served by exactly one strategy.
        for ci, (node, _, _) in enumerate(classes):
            row = np.zeros(n_vars)
            for strategy in cands[node]:
                row[y_index[(ci, strategy)]] = 1.0
            add_row(row, 1.0, 1.0)
        # y <= x
        for (ci, strategy), yi in y_index.items():
            node = classes[ci][0]
            row = np.zeros(n_vars)
            row[yi] = 1.0
            row[x_index[(node, strategy)]] = -1.0
            add_row(row, -np.inf, 0.0)
        # At least one strategy per node.
        for node in nodes:
            row = np.zeros(n_vars)
            for strategy in cands[node]:
                row[x_index[(node, strategy)]] = 1.0
            add_row(row, 1.0, np.inf)
        # Budgets.
        disk_row = np.zeros(n_vars)
        run_row = np.zeros(n_vars)
        for (node, strategy), xi in x_index.items():
            disk_row[xi] = self.cost_model.disk_bytes(node, strategy)
            run_row[xi] = self.cost_model.write_seconds(node, strategy)
        add_row(disk_row, -np.inf, float(max_disk))
        if max_run is not None:
            add_row(run_row, -np.inf, float(max_run))

        lower = np.zeros(n_vars)
        upper = np.ones(n_vars)
        for node in nodes:
            for strategy in pins.get(node, []):
                if (node, strategy) in x_index:
                    lower[x_index[(node, strategy)]] = 1.0
        integrality = np.zeros(n_vars)
        integrality[:n_x] = 1

        result = milp(
            c=cost,
            constraints=LinearConstraint(np.asarray(rows), np.asarray(lbs), np.asarray(ubs)),
            integrality=integrality,
            bounds=Bounds(lower, upper),
        )
        if not result.success:
            raise OptimizationError(f"MILP solve failed: {result.message}")
        plan: dict[str, list[StorageStrategy]] = {}
        for (node, strategy), xi in x_index.items():
            if result.x[xi] > 0.5:
                plan.setdefault(node, []).append(strategy)
        return plan, True

    # -- greedy fallback ---------------------------------------------------------------

    def _solve_greedy(
        self,
        nodes: list[str],
        cands: dict[str, list[StorageStrategy]],
        pins: dict[str, list[StorageStrategy]],
        workload: WorkloadProfile,
        max_disk: float,
        max_run: float | None,
    ) -> dict[str, list[StorageStrategy]]:
        plan = {node: [BLACKBOX] for node in nodes}
        for node, strategies in pins.items():
            for strategy in strategies:
                if strategy not in plan[node]:
                    plan[node].append(strategy)

        def objective() -> float:
            total = 0.0
            for node in nodes:
                for direction, weight in workload.directions_for(node).items():
                    best = min(
                        self._query_cost(node, s, direction, workload.cells)
                        for s in plan[node]
                    )
                    total += weight * best
            return total

        def disk_used() -> float:
            return sum(
                self.cost_model.disk_bytes(n, s) for n in nodes for s in plan[n]
            )

        def run_used() -> float:
            return sum(
                self.cost_model.write_seconds(n, s) for n in nodes for s in plan[n]
            )

        improved = True
        while improved:
            improved = False
            base = objective()
            best_gain, best_pick = 0.0, None
            for node in nodes:
                for strategy in cands[node]:
                    if strategy in plan[node]:
                        continue
                    extra_disk = self.cost_model.disk_bytes(node, strategy)
                    extra_run = self.cost_model.write_seconds(node, strategy)
                    if disk_used() + extra_disk > max_disk:
                        continue
                    if max_run is not None and run_used() + extra_run > max_run:
                        continue
                    plan[node].append(strategy)
                    gain = base - objective()
                    plan[node].remove(strategy)
                    if gain > best_gain:
                        best_gain, best_pick = gain, (node, strategy)
            if best_pick is not None and best_gain > 0:
                plan[best_pick[0]].append(best_pick[1])
                improved = True
        return plan

    # -- result assembly ----------------------------------------------------------------

    def _finalize(
        self,
        operators: dict[str, Operator],
        plan: dict[str, list[StorageStrategy]],
        workload: WorkloadProfile,
        used_ilp: bool,
    ) -> OptimizationResult:
        for node in operators:
            strategies = plan.setdefault(node, [])
            if not strategies:
                strategies.append(BLACKBOX)
        disk = sum(
            self.cost_model.disk_bytes(node, s)
            for node, strategies in plan.items()
            for s in strategies
        )
        run = sum(
            self.cost_model.write_seconds(node, s)
            for node, strategies in plan.items()
            for s in strategies
        )
        query = 0.0
        for node, strategies in plan.items():
            for direction, weight in workload.directions_for(node).items():
                query += weight * min(
                    self._query_cost(node, s, direction, workload.cells)
                    for s in strategies
                )
        return OptimizationResult(
            plan=plan,
            est_disk_bytes=disk,
            est_runtime_seconds=run,
            est_query_seconds=query,
            used_ilp=used_ilp,
        )
