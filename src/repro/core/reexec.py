"""Black-box re-execution in tracing mode (§V-B).

When a lineage query reaches an operator that stored only black-box
lineage, the operator is re-run on its persisted input versions with
``cur_modes = {Full}`` (or the richest pair mode it supports); the resulting
``lwrite()`` calls are captured in a :class:`~repro.core.model.BufferSink`
and joined against the query cells.

Mapping operators have nothing to capture: re-execution pays the compute
cost (the black-box penalty the paper measures) and the join then uses the
mapping functions.  Un-instrumented operators degrade to all-to-all.
"""

from __future__ import annotations

import itertools
import time

import numpy as np

from repro.arrays import coords as C
from repro.core.model import BufferSink
from repro.core.modes import LineageMode
from repro.core.stats import StatsCollector
from repro.ops.base import LineageContext, Operator
from repro.workflow.instance import WorkflowInstance

__all__ = ["ReExecutor", "join_sink_backward", "join_sink_forward"]


class ReExecutor:
    """Re-runs operators of an executed workflow instance in tracing mode."""

    def __init__(self, instance: WorkflowInstance, stats: StatsCollector | None = None):
        self.instance = instance
        self.stats = stats

    # -- tracing -------------------------------------------------------------

    def _tracing_modes(self, op: Operator) -> frozenset[LineageMode] | None:
        supported = op.supported_modes()
        for mode in (LineageMode.FULL, LineageMode.COMP, LineageMode.PAY):
            if mode in supported:
                return frozenset({mode})
        return None

    def rerun(self, node: str) -> tuple[BufferSink | None, frozenset[LineageMode]]:
        """Re-execute ``node``; returns the captured sink (None when the
        operator has no lineage instrumentation) and the modes used."""
        op = self.instance.operator(node)
        inputs = self.instance.input_arrays(node)
        modes = self._tracing_modes(op)
        start = time.perf_counter()
        if modes is None:
            op.compute(inputs)  # pay the re-execution cost
            sink = None
        else:
            sink = BufferSink()
            ctx = LineageContext(cur_modes=modes, sink=sink, node=node)
            op.run(inputs, ctx)
        elapsed = time.perf_counter() - start
        if self.stats is not None:
            self.stats.record_reexec(node, elapsed)
        return sink, (modes or frozenset())

    # -- query entry points --------------------------------------------------------

    def trace_backward(self, node: str, qpacked: np.ndarray, input_idx: int) -> np.ndarray:
        """Backward lineage of ``qpacked`` (packed against the node's output
        array) in input ``input_idx``, via re-execution."""
        op = self.instance.operator(node)
        out_shape = op.output_shape
        in_shape = op.input_shapes[input_idx]
        sink, modes = self.rerun(node)
        if sink is None:
            if LineageMode.MAP in op.supported_modes():
                coords = C.unpack_coords(qpacked, out_shape)
                return C.pack_coords(op.map_b_many(coords, input_idx), in_shape)
            if qpacked.size == 0:
                return np.empty(0, dtype=np.int64)
            return np.arange(int(np.prod(in_shape)), dtype=np.int64)
        result, matched = join_sink_backward(
            sink, op, qpacked, input_idx, out_shape, in_shape
        )
        if LineageMode.COMP in modes:
            unmatched = qpacked[~matched]
            if unmatched.size:
                coords = C.unpack_coords(unmatched, out_shape)
                default = C.pack_coords(op.map_b_many(coords, input_idx), in_shape)
                result = np.concatenate([result, default])
        return np.unique(result) if result.size else result

    def trace_forward(self, node: str, qpacked: np.ndarray, input_idx: int) -> np.ndarray:
        """Forward lineage of ``qpacked`` (packed against input ``input_idx``)
        into the node's output array, via re-execution."""
        op = self.instance.operator(node)
        out_shape = op.output_shape
        in_shape = op.input_shapes[input_idx]
        sink, modes = self.rerun(node)
        if sink is None:
            if LineageMode.MAP in op.supported_modes():
                coords = C.unpack_coords(qpacked, in_shape)
                return C.pack_coords(op.map_f_many(coords, input_idx), out_shape)
            if qpacked.size == 0:
                return np.empty(0, dtype=np.int64)
            return np.arange(int(np.prod(out_shape)), dtype=np.int64)
        result, covered = join_sink_forward(
            sink, op, qpacked, input_idx, out_shape, in_shape
        )
        if LineageMode.COMP in modes:
            # Cells whose default (mapping) image is not overridden by a
            # payload pair keep their mapped forward lineage.
            coords = C.unpack_coords(qpacked, in_shape)
            default = C.pack_coords(op.map_f_many(coords, input_idx), out_shape)
            keep = default[~np.isin(default, covered)] if covered.size else default
            result = np.concatenate([result, keep])
        return np.unique(result) if result.size else result


def join_sink_backward(
    sink: BufferSink,
    op: Operator,
    qpacked: np.ndarray,
    input_idx: int,
    out_shape: tuple[int, ...],
    in_shape: tuple[int, ...],
) -> tuple[np.ndarray, np.ndarray]:
    """Join captured pairs with query output cells.

    Returns ``(in_packed, matched)`` where ``matched`` flags which query
    cells had explicit lineage (needed for composite defaults).
    """
    query = np.sort(qpacked)
    matched = np.zeros(qpacked.size, dtype=bool)
    parts: list[np.ndarray] = []

    def mark(hit_packed: np.ndarray) -> None:
        matched[np.isin(qpacked, hit_packed)] = True

    for pair in itertools.chain(sink.pairs, _payload_batch_pairs(sink)):
        outp = C.pack_coords(pair.outcells, out_shape)
        hit = outp[C.isin_sorted(outp, query)]
        if hit.size == 0:
            continue
        mark(hit)
        if pair.is_payload:
            cells = op.map_p_many(
                C.unpack_coords(hit, out_shape), pair.payload, input_idx
            )
            parts.append(C.pack_coords(cells, in_shape))
        else:
            parts.append(C.pack_coords(pair.incells[input_idx], in_shape))
    for batch in sink.elementwise:
        outp = C.pack_coords(batch.outcells, out_shape)
        mask = C.isin_sorted(outp, query)
        if mask.any():
            mark(outp[mask])
            inp = C.pack_coords(batch.incells[input_idx], in_shape)
            parts.append(inp[mask])
    for pbatch in sink.payload_batches:
        outp = C.pack_coords(pbatch.outcells, out_shape)
        mask = C.isin_sorted(outp, query)
        if not mask.any():
            continue
        mark(outp[mask])
        coords = C.as_coord_array(pbatch.outcells)[mask]
        payloads = (
            pbatch.payloads[mask]
            if isinstance(pbatch.payloads, np.ndarray)
            else [p for p, m in zip(pbatch.payloads, mask) if m]
        )
        cells, _ = op.map_p_batch(coords, payloads, input_idx)
        parts.append(C.pack_coords(cells, in_shape))
    for rb in sink.region_batches:
        if rb.is_payload:
            continue  # handled via _payload_batch_pairs above
        outp = C.pack_coords(rb.out_coords, out_shape)
        hit_mask = C.isin_sorted(outp, query)
        if not hit_mask.any():
            continue
        mark(outp[hit_mask])
        owner = np.repeat(
            np.arange(rb.count, dtype=np.int64), np.diff(rb.out_offsets)
        )
        hit_pairs = np.zeros(rb.count, dtype=bool)
        hit_pairs[owner[hit_mask]] = True
        in_off = rb.in_offsets[input_idx]
        idx = C.expand_ranges(in_off[:-1][hit_pairs], np.diff(in_off)[hit_pairs])
        if idx.size:
            parts.append(
                C.pack_coords(rb.in_coords[input_idx][idx], in_shape)
            )
    result = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    return result, matched


def _payload_batch_pairs(sink: BufferSink):
    """Materialise the payload region batches as pairs — payload expansion
    is inherently per-pair (``map_p``), so these join via the pair path."""
    return (
        rb.pair_at(i)
        for rb in sink.region_batches
        if rb.is_payload
        for i in range(rb.count)
    )


def join_sink_forward(
    sink: BufferSink,
    op: Operator,
    qpacked: np.ndarray,
    input_idx: int,
    out_shape: tuple[int, ...],
    in_shape: tuple[int, ...],
) -> tuple[np.ndarray, np.ndarray]:
    """Join captured pairs with query input cells.

    Returns ``(out_packed, covered)`` where ``covered`` lists every output
    cell that carried an explicit (payload) pair — composite defaults must
    exclude those.
    """
    query = np.sort(qpacked)
    parts: list[np.ndarray] = []
    covered_parts: list[np.ndarray] = []

    for pair in itertools.chain(sink.pairs, _payload_batch_pairs(sink)):
        outp = C.pack_coords(pair.outcells, out_shape)
        if pair.is_payload:
            covered_parts.append(outp)
            if op.payload_uniform:
                cells = op.map_p_many(pair.outcells, pair.payload, input_idx)
                inp = C.pack_coords(cells, in_shape)
                if C.isin_sorted(inp, query).any():
                    parts.append(outp)
            else:
                for i in range(pair.outcells.shape[0]):
                    cells = op.map_p_many(
                        pair.outcells[i: i + 1], pair.payload, input_idx
                    )
                    inp = C.pack_coords(cells, in_shape)
                    if C.isin_sorted(inp, query).any():
                        parts.append(outp[i: i + 1])
        else:
            inp = C.pack_coords(pair.incells[input_idx], in_shape)
            if C.isin_sorted(inp, query).any():
                parts.append(outp)
    for batch in sink.elementwise:
        inp = C.pack_coords(batch.incells[input_idx], in_shape)
        mask = C.isin_sorted(inp, query)
        if mask.any():
            outp = C.pack_coords(batch.outcells, out_shape)
            parts.append(outp[mask])
    for pbatch in sink.payload_batches:
        outp = C.pack_coords(pbatch.outcells, out_shape)
        covered_parts.append(outp)
        coords = C.as_coord_array(pbatch.outcells)
        cells, rows = op.map_p_batch(coords, pbatch.payloads, input_idx)
        inp = C.pack_coords(cells, in_shape)
        hit_rows = np.unique(rows[np.isin(inp, query)])
        if hit_rows.size:
            parts.append(outp[hit_rows])
    for rb in sink.region_batches:
        if rb.is_payload:
            continue  # handled via _payload_batch_pairs above
        inp = C.pack_coords(rb.in_coords[input_idx], in_shape)
        mask = C.isin_sorted(inp, query)
        if not mask.any():
            continue
        owner = np.repeat(
            np.arange(rb.count, dtype=np.int64),
            np.diff(rb.in_offsets[input_idx]),
        )
        hit_pairs = np.zeros(rb.count, dtype=bool)
        hit_pairs[owner[mask]] = True
        idx = C.expand_ranges(
            rb.out_offsets[:-1][hit_pairs], np.diff(rb.out_offsets)[hit_pairs]
        )
        outp = C.pack_coords(rb.out_coords[idx], out_shape)
        parts.append(outp)
    result = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    covered = (
        np.unique(np.concatenate(covered_parts))
        if covered_parts
        else np.empty(0, dtype=np.int64)
    )
    return result, covered
