"""repro.analysis — repo-invariant lint engine and lock-order validator.

Two halves, one contract surface:

* **Static** — ``python -m repro.analysis`` runs the SZ rule catalog
  (:mod:`repro.analysis.rules`) over the package and gates CI on the
  serving core's concurrency and resource contracts.  See
  ``docs/static_analysis.md``.
* **Dynamic** — :mod:`repro.analysis.lockcheck` is the instrumented lock
  factory every core/storage lock is built through; under
  ``REPRO_LOCKCHECK=1`` it validates lock-acquisition order at runtime
  while the stress suites execute.

This module deliberately imports nothing heavy: ``from repro.analysis
import lockcheck`` is on the import path of every core module and must
stay cheap.
"""

from __future__ import annotations

__all__ = ["lockcheck"]

from repro.analysis import lockcheck
