"""CLI: ``python -m repro.analysis [paths...]``.

Exit status 0 when every finding is inline-suppressed or baselined,
1 otherwise — the contract the CI ``invariants`` job gates on.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.engine import Baseline, format_report, run

DEFAULT_BASELINE = "analysis-baseline.json"


def _default_paths() -> list[str]:
    """Scan ``src/repro`` relative to the repo root when run from it,
    else the installed package directory."""
    if os.path.isdir(os.path.join("src", "repro")):
        return [os.path.join("src", "repro")]
    import repro

    return [os.path.dirname(os.path.abspath(repro.__file__))]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Machine-check the SZ invariant catalog (see docs/static_analysis.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (github emits workflow commands)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline JSON path (default: ./{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0 "
        "(justifications start as TODO — edit them before committing)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    from repro.analysis.rules import ALL_RULES

    if args.list_rules:
        for rule in ALL_RULES:
            scope = ", ".join(rule.scope) if rule.scope else "all files"
            print(f"{rule.id}  {rule.title}  [{scope}]")
            print(f"       {rule.rationale}")
        return 0

    rules = ALL_RULES
    if args.select:
        wanted = {part.strip() for part in args.select.split(",") if part.strip()}
        rules = [rule for rule in ALL_RULES if rule.id in wanted]
        unknown = wanted - {rule.id for rule in rules}
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")

    paths = args.paths or _default_paths()

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE

    if args.write_baseline:
        report = run(paths, rules=rules, baseline=None)
        target = baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(report.findings).save(target)
        print(
            f"wrote {len(report.findings)} entr(y/ies) to {target} — "
            "edit the TODO justifications before committing"
        )
        return 0

    baseline = None
    if baseline_path is not None:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load baseline {baseline_path!r}: {exc}", file=sys.stderr)
            return 2

    report = run(paths, rules=rules, baseline=baseline)
    print(format_report(report, args.format))
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
