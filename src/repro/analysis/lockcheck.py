"""Instrumented lock factory and runtime lock-order validator.

Every lock in :mod:`repro.core` and :mod:`repro.storage` is constructed
through :func:`make_lock` / :func:`make_rlock` (enforced statically by rule
SZ005, see :mod:`repro.analysis.rules`).  In normal operation the factory
returns a plain :class:`threading.Lock` / :class:`threading.RLock` — zero
overhead, zero behaviour change.

When lock checking is enabled (``REPRO_LOCKCHECK=1`` in the environment, or
:func:`enable` at runtime) the factory instead returns a :class:`CheckedLock`
wrapper that feeds a global :class:`LockCheckRegistry`:

* **Lock-acquisition-order graph.**  Whenever a thread acquires lock ``B``
  while holding lock ``A``, the edge ``A -> B`` is recorded (by lock *name*,
  so every instance of e.g. the catalog cache lock shares one graph node).
  An edge that closes a cycle in the graph is a potential deadlock — two
  threads can interleave the inverted orders — and raises
  :class:`LockOrderError` at the acquisition that would complete the cycle
  (or is recorded silently under ``enable(record_only=True)``).
* **Held-while-I/O events.**  Blocking-I/O entry points (segment open,
  segment write, file unlink) call :func:`note_io`; when the calling thread
  holds any instrumented lock, the event is recorded with the held lock
  names.  These are *observations*, not failures — some sites are
  deliberate (the lazy shard map) and carry a static-analysis baseline
  entry — but the counters surface regressions in serving stats.
* **Counters** (:func:`stats`): locks instrumented, max locks held by one
  thread at once, cycles found, held-while-I/O events.  The runtime merges
  them into ``serving_stats()`` so the observability surface is one dict.

The checker is a poor man's race/deadlock detector: it validates the order
contract on whatever the test suite actually executes, which is exactly the
coverage the serving/compaction stress suites provide in CI
(``REPRO_LOCKCHECK=1`` re-runs in the ``invariants`` job).

Reentrant acquisition of the same lock *instance* (an RLock) records no
edge; nesting two *different instances* with the same name records a
``name -> name`` self-edge and is reported as a cycle, because two
same-class locks taken in instance order A,B by one thread and B,A by
another deadlock just the same.
"""

from __future__ import annotations

import os
import threading

from repro.errors import SubZeroError

__all__ = [
    "CheckedLock",
    "LockCheckRegistry",
    "LockOrderError",
    "enable",
    "disable",
    "enabled",
    "held_locks",
    "make_lock",
    "make_rlock",
    "note_io",
    "registry",
    "reset",
    "stats",
]


class LockOrderError(SubZeroError):
    """Two locks were acquired in inconsistent orders (potential deadlock)."""


def _env_enabled() -> bool:
    return os.environ.get("REPRO_LOCKCHECK", "").strip() not in ("", "0")


#: module-level fast flag: checked once per factory call / note_io call
_active: bool = _env_enabled()
#: when active: raise LockOrderError at the cycle-closing acquisition, or
#: only record it (``enable(record_only=True)`` — used by tests that want
#: to inspect the cycle rather than unwind mid-acquire)
_raise_on_cycle: bool = True

_tls = threading.local()


def _held() -> list:
    """The instrumented locks (CheckedLock instances) this thread holds,
    in acquisition order; reentrant acquisitions appear once."""
    held = getattr(_tls, "held", None)
    if held is None:
        held = []
        _tls.held = held
    return held


class LockCheckRegistry:
    """Global store for the order graph, cycles, and counters."""

    def __init__(self) -> None:
        # the registry's own mutex is deliberately a raw threading.Lock:
        # instrumenting it would recurse
        self._mutex = threading.Lock()  # szlint: ignore[SZ005] -- the checker's own mutex cannot be checked
        self._names: set[str] = set()
        self._edges: dict[tuple[str, str], int] = {}
        self._cycles: list[tuple[str, ...]] = []
        self._held_io: list[tuple[str, tuple[str, ...]]] = []
        self.max_held = 0

    # -- recording -----------------------------------------------------------

    def register(self, name: str) -> None:
        with self._mutex:
            self._names.add(name)

    def record_acquire(self, lock: "CheckedLock", held: list) -> None:
        """Record order edges from every held lock to ``lock``; detect and
        record (and optionally raise on) a cycle the new edge closes."""
        new_cycle: tuple[str, ...] | None = None
        with self._mutex:
            if len(held) + 1 > self.max_held:
                self.max_held = len(held) + 1
            for holder in held:
                if holder is lock:
                    continue  # RLock reentry: no self-instance edge
                edge = (holder.name, lock.name)
                fresh = edge not in self._edges
                self._edges[edge] = self._edges.get(edge, 0) + 1
                if fresh:
                    path = self._find_path(lock.name, holder.name)
                    if path is not None:
                        cycle = tuple(path) + (lock.name,)
                        self._cycles.append(cycle)
                        new_cycle = cycle
        if new_cycle is not None and _raise_on_cycle:
            raise LockOrderError(
                "lock-order cycle (potential deadlock): "
                + " -> ".join(new_cycle)
            )

    def _find_path(self, src: str, dst: str) -> list[str] | None:
        """DFS for a path src -> ... -> dst over the edge graph (callers
        hold the mutex).  ``src == dst`` is the trivial self-edge path."""
        if src == dst:
            return [src]
        stack = [(src, [src])]
        seen = {src}
        adjacency: dict[str, list[str]] = {}
        for a, b in self._edges:
            adjacency.setdefault(a, []).append(b)
        while stack:
            node, path = stack.pop()
            for nxt in adjacency.get(node, ()):
                if nxt == dst:
                    return path + [nxt]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    def record_io(self, label: str, held: list) -> None:
        names = tuple(lock.name for lock in held)
        with self._mutex:
            self._held_io.append((label, names))

    # -- introspection -------------------------------------------------------

    def edges(self) -> dict[tuple[str, str], int]:
        with self._mutex:
            return dict(self._edges)

    def cycles(self) -> list[tuple[str, ...]]:
        with self._mutex:
            return list(self._cycles)

    def held_io_events(self) -> list[tuple[str, tuple[str, ...]]]:
        with self._mutex:
            return list(self._held_io)

    def stats(self) -> dict[str, int]:
        with self._mutex:
            return {
                "lockcheck_locks": len(self._names),
                "lockcheck_max_held": self.max_held,
                "lockcheck_cycles": len(self._cycles),
                "lockcheck_held_io": len(self._held_io),
            }

    def check(self) -> None:
        """Raise :class:`LockOrderError` if any cycle was recorded."""
        with self._mutex:
            cycles = list(self._cycles)
        if cycles:
            raise LockOrderError(
                "lock-order cycles recorded: "
                + "; ".join(" -> ".join(c) for c in cycles)
            )

    def clear(self) -> None:
        with self._mutex:
            self._names.clear()
            self._edges.clear()
            self._cycles.clear()
            self._held_io.clear()
            self.max_held = 0


#: the process-wide registry every CheckedLock reports to
registry = LockCheckRegistry()


class CheckedLock:
    """Wraps a real lock, reporting acquisitions to the registry.

    Presents the subset of the lock API the codebase uses: ``acquire`` /
    ``release`` / context manager / ``locked``.  The wrapped lock keeps its
    exact blocking semantics — instrumentation happens only after a
    successful acquisition, and order edges are recorded *after* the lock
    is actually held, so the checker itself can never deadlock the code
    under test.
    """

    __slots__ = ("name", "_lock", "_reentrant")

    def __init__(self, name: str, reentrant: bool) -> None:
        self.name = name
        self._reentrant = reentrant
        # raw constructors by design: this *is* the factory's product
        if reentrant:
            self._lock = threading.RLock()  # szlint: ignore[SZ005] -- the factory's own product
        else:
            self._lock = threading.Lock()  # szlint: ignore[SZ005] -- the factory's own product
        registry.register(name)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        held = _held()
        reentry = self._reentrant and self in held
        acquired = self._lock.acquire(blocking, timeout)
        if acquired and not reentry:
            try:
                registry.record_acquire(self, held)
            except LockOrderError:
                self._lock.release()
                raise
            held.append(self)
        return acquired

    def release(self) -> None:
        self._lock.release()
        held = _held()
        # an RLock releases from the held list only on its outermost exit
        if not (self._reentrant and self._lock._is_owned()):
            for i in range(len(held) - 1, -1, -1):
                if held[i] is self:
                    del held[i]
                    break

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<CheckedLock {self.name!r} reentrant={self._reentrant}>"


# -- the factory (the only sanctioned lock constructors, per SZ005) ----------


def make_lock(name: str):
    """A mutex for ``name`` — plain :class:`threading.Lock` normally, a
    :class:`CheckedLock` under ``REPRO_LOCKCHECK=1`` / :func:`enable`.

    ``name`` identifies the lock's *role* (e.g. ``"catalog.cache"``), not
    the instance: every instance of a role shares one node in the order
    graph, which is what makes the order contract class-level.
    """
    if _active:
        return CheckedLock(name, reentrant=False)
    return threading.Lock()  # szlint: ignore[SZ005] -- the factory's own product


def make_rlock(name: str):
    """Reentrant variant of :func:`make_lock`."""
    if _active:
        return CheckedLock(name, reentrant=True)
    return threading.RLock()  # szlint: ignore[SZ005] -- the factory's own product


# -- enable / disable / observe ----------------------------------------------


def enabled() -> bool:
    """True when newly constructed locks will be instrumented."""
    return _active


def enable(record_only: bool = False) -> None:
    """Turn instrumentation on for locks constructed from now on.

    ``record_only=True`` records cycles without raising at the acquisition
    site (tests use this to assert on the recorded cycle itself)."""
    global _active, _raise_on_cycle
    _active = True
    _raise_on_cycle = not record_only


def disable() -> None:
    """Stop instrumenting newly constructed locks (existing CheckedLocks
    keep reporting; construct fresh objects to shed them)."""
    global _active
    _active = False


def reset() -> None:
    """Clear the registry (edges, cycles, counters) — test isolation."""
    registry.clear()


def held_locks() -> tuple[str, ...]:
    """Names of the instrumented locks the calling thread currently holds."""
    return tuple(lock.name for lock in _held())


def note_io(label: str) -> None:
    """Mark a blocking-I/O entry point (segment open/write/unlink).

    No-op when checking is disabled.  When enabled and the calling thread
    holds instrumented locks, records a held-while-I/O event — the dynamic
    counterpart of static rule SZ002."""
    if not _active:
        return
    held = _held()
    if held:
        registry.record_io(label, held)


def stats() -> dict[str, int]:
    """Registry counters (all zero when checking never ran)."""
    return registry.stats()
