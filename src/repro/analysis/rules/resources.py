"""Resource-pairing rules: SZ001 (acquire/borrow released on all paths),
SZ003 (tmp-file writes clean up on failure)."""

from __future__ import annotations

import ast

from repro.analysis.engine import dotted_name
from repro.analysis.rules.base import Rule

#: method names whose call site takes a refcounted/pinned resource
_ACQUIRERS = {"acquire", "borrow"}
#: method names that give one back
_RELEASERS = {"release", "close"}
#: enclosing-function names allowed to return an un-released resource:
#: they *are* the acquisition API, or they hand ownership to their caller
_OWNERSHIP_FORWARDERS = {"acquire", "borrow", "__enter__"}


def _call_method(node: ast.Call) -> str | None:
    """``attr`` for a call of shape ``<expr>.attr(...)``, else None."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


class SZ001(Rule):
    id = "SZ001"
    title = "acquire()/borrow() results are released on every path"
    rationale = (
        "Segments are refcounted (`acquire`/`close`) and catalog records "
        "are pinned (`borrow`/`release`); a leaked ref pins an mmap and a "
        "file descriptor for the life of the process, defeating the "
        "cache's eviction budget.  A call whose result neither escapes nor reaches a "
        "release on the failure path is a leak."
    )
    scope = ()

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            method = _call_method(node)
            if method not in _ACQUIRERS:
                continue
            # `self.acquire()` inside the resource class itself (re-entrant
            # refcounting) is the implementation, not a leak site
            func = ctx.enclosing_function(node)
            if func is not None and (
                func.name in _OWNERSHIP_FORWARDERS
                or func.name.startswith("open")
                or func.name.startswith("_open")
            ):
                continue
            if self._is_safe(ctx, node):
                continue
            yield ctx.finding(
                self.id,
                node,
                f".{method}() result is neither released on the failure "
                "path nor handed off — wrap in try/finally with "
                f"`.{'release' if method == 'borrow' else 'close'}()` or "
                "use a pin-scope (QuerySession)",
            )

    def _is_safe(self, ctx, call: ast.Call) -> bool:
        parent = ctx.parent(call)
        # `with x.acquire():` / `return x.borrow()` / `yield ...` hand the
        # resource to a manager or to the caller
        if isinstance(parent, (ast.withitem, ast.Return, ast.Yield, ast.YieldFrom)):
            return True
        # value used directly as an argument / element / dict value /
        # attribute-subscript store: ownership escapes to the container
        if isinstance(
            parent,
            (ast.Call, ast.Tuple, ast.List, ast.Set, ast.Dict, ast.Starred),
        ):
            return True
        if isinstance(parent, ast.Attribute):
            # chained call like catalog.borrow(...).store — resource still
            # reachable only through the chain; treat conservatively as safe
            # only when the chain itself escapes (common: `.store` reads)
            return True
        if isinstance(parent, ast.Assign):
            return self._assigned_name_safe(ctx, parent, call)
        return False

    def _assigned_name_safe(self, ctx, assign: ast.Assign, call: ast.Call) -> bool:
        """An assigned resource is safe when the name escapes the function
        or a release appears in a finally/except body."""
        if len(assign.targets) != 1:
            return True  # tuple-unpack targets: too dynamic to judge
        target = assign.targets[0]
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            return True  # stored onto an object: owner releases it
        if not isinstance(target, ast.Name):
            return True
        name = target.id
        func = ctx.enclosing_function(call)
        scope_body = func.body if func is not None else ctx.tree.body
        return self._name_escapes(scope_body, name, assign) or self._released_on_failure(
            scope_body, name
        )

    @staticmethod
    def _name_escapes(body, name: str, assign: ast.Assign) -> bool:
        """True when ``name`` is passed to a call, stored into a container /
        attribute, returned, yielded, or aliased after the assignment."""
        for stmt in body:
            for node in ast.walk(stmt):
                if node is assign:
                    continue
                if isinstance(node, ast.Call):
                    for arg in list(node.args) + [kw.value for kw in node.keywords]:
                        for sub in ast.walk(arg):
                            if isinstance(sub, ast.Name) and sub.id == name:
                                return True
                if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                    value = node.value
                    if value is not None:
                        for sub in ast.walk(value):
                            if isinstance(sub, ast.Name) and sub.id == name:
                                return True
                if isinstance(node, ast.Assign):
                    # alias or store: rec = x / self._map[k] = x / lst = [x]
                    for sub in ast.walk(node.value):
                        if isinstance(sub, ast.Name) and sub.id == name:
                            return True
        return False

    @staticmethod
    def _released_on_failure(body, name: str) -> bool:
        """A ``name.release()``/``name.close()``/``X.release(name)`` inside
        any finally or except body in the scope."""

        def has_release(stmts) -> bool:
            for stmt in stmts:
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    method = _call_method(node)
                    if method in _RELEASERS:
                        # name.release() / name.close()
                        base = node.func.value
                        if isinstance(base, ast.Name) and base.id == name:
                            return True
                        # catalog.release(name)
                        for arg in node.args:
                            if isinstance(arg, ast.Name) and arg.id == name:
                                return True
            return False

        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Try):
                    if node.finalbody and has_release(node.finalbody):
                        return True
                    for handler in node.handlers:
                        if has_release(handler.body):
                            return True
        return False


class SZ003(Rule):
    id = "SZ003"
    title = "tmp-file writes clean up their tmp on failure"
    rationale = (
        "The store format's atomicity contract is tmp-write + os.replace; "
        "a write that dies between `open(tmp, 'w')` and the rename must "
        "unlink the tmp in a finally/except, or crashed runs litter the "
        "store directory with half-written segments that the next open "
        "may mistake for data."
    )
    scope = ()

    _WRITE_MODES = ("w", "wb", "w+", "wb+", "x", "xb", "a", "ab")

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_tmp_write(node):
                continue
            if self._cleanup_guard(ctx, node):
                continue
            yield ctx.finding(
                self.id,
                node,
                "tmp-file write without failure cleanup — wrap in "
                "try/except (or finally) that os.remove()s the tmp before "
                "re-raising, then os.replace() into place",
            )

    def _is_tmp_write(self, call: ast.Call) -> bool:
        name = dotted_name(call.func)
        if name != "open" or len(call.args) < 2:
            return False
        mode = call.args[1]
        if not (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and mode.value in self._WRITE_MODES
        ):
            return False
        return self._mentions_tmp(call.args[0])

    @staticmethod
    def _mentions_tmp(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                if "tmp" in sub.value.lower():
                    return True
            if isinstance(sub, ast.Name) and "tmp" in sub.id.lower():
                return True
            if isinstance(sub, ast.Attribute) and "tmp" in sub.attr.lower():
                return True
        return False

    def _cleanup_guard(self, ctx, call: ast.Call) -> bool:
        """True when an enclosing Try has a finally/except that unlinks."""

        def unlinks(stmts) -> bool:
            for stmt in stmts:
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    name = dotted_name(node.func) or ""
                    if name in ("os.remove", "os.unlink"):
                        return True
                    if name.endswith(".unlink"):  # pathlib
                        return True
            return False

        for anc in ctx.ancestors(call):
            if isinstance(anc, ast.Try):
                if anc.finalbody and unlinks(anc.finalbody):
                    return True
                for handler in anc.handlers:
                    if unlinks(handler.body):
                        return True
        return False
