"""Rule base class (separate module so rule modules avoid import cycles)."""

from __future__ import annotations

__all__ = ["Rule"]


class Rule:
    """Base class: subclasses set ``id``/``title``/``rationale``/``scope``
    and implement ``check(ctx) -> Iterable[Finding]``.

    ``scope`` is a tuple of path substrings; an empty tuple means every
    scanned file.  The engine applies the filter before calling ``check``.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    scope: tuple[str, ...] = ()

    def check(self, ctx):  # pragma: no cover - interface
        raise NotImplementedError
