"""Error-contract rule: SZ004 — the storage layer never lets a raw
``OSError`` escape to callers; it wraps in :class:`repro.errors.StorageError`."""

from __future__ import annotations

import ast

from repro.analysis.engine import dotted_name
from repro.analysis.rules.base import Rule

#: calls that can raise OSError from the filesystem
_RISKY_DOTTED = {
    "open",
    "os.replace",
    "os.remove",
    "os.unlink",
    "os.rename",
    "os.makedirs",
    "os.listdir",
    "os.fsync",
    "os.stat",
    "os.path.getsize",
    "mmap.mmap",
}

#: exception names whose catch covers OSError
_COVERS_OSERROR = {
    "OSError",
    "IOError",
    "EnvironmentError",
    "FileNotFoundError",
    "Exception",
    "BaseException",
}

#: exception names that count as the sanctioned wrapper
_WRAPPERS = {"StorageError", "LineageError"}


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    """The exception type names an ``except`` clause catches."""
    if handler.type is None:
        return {"BaseException"}  # bare except
    nodes = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    out = set()
    for node in nodes:
        name = dotted_name(node)
        if name is not None:
            out.add(name.rsplit(".", 1)[-1])
    return out


def _handler_wraps_or_swallows(handler: ast.ExceptHandler) -> bool:
    """A handler satisfies the contract when it raises a domain error, or
    raises nothing at all (deliberate swallow / cleanup-and-continue).  A
    bare ``raise`` re-throws the raw OSError and does NOT satisfy it —
    unless a sibling raise of a wrapper exists (isinstance dispatch)."""
    raises = [
        node for node in ast.walk(handler) if isinstance(node, ast.Raise)
    ]
    if not raises:
        return True
    for node in raises:
        exc = node.exc
        if exc is None:
            continue  # bare re-raise: judged by the other raises
        target = exc.func if isinstance(exc, ast.Call) else exc
        name = dotted_name(target)
        if name is not None and name.rsplit(".", 1)[-1] in _WRAPPERS:
            return True
    # only bare re-raises / non-wrapper raises found
    return False


class SZ004(Rule):
    id = "SZ004"
    title = "the storage layer never lets a raw OSError escape"
    rationale = (
        "Callers above the storage boundary catch StorageError — a raw "
        "OSError/FileNotFoundError from deep inside a segment open skips "
        "every recovery path (catalog eviction retry, serving-session "
        "fallback) and kills the worker thread instead."
    )
    scope = ("storage/", "core/catalog.py", "core/lineage_store.py")

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name not in _RISKY_DOTTED:
                continue
            if self._properly_guarded(ctx, node):
                continue
            yield ctx.finding(
                self.id,
                node,
                f"{name}() can raise a raw OSError through the storage "
                "boundary — wrap in try/except OSError and re-raise as "
                "StorageError",
            )

    @staticmethod
    def _properly_guarded(ctx, call: ast.Call) -> bool:
        """True when an enclosing Try catches an OSError-covering type and
        its handler wraps (or deliberately swallows) the error."""
        for anc in ctx.ancestors(call):
            if not isinstance(anc, ast.Try):
                continue
            # the call must be in the try body, not in a handler/finally
            in_body = any(
                call is stmt or any(call is sub for sub in ast.walk(stmt))
                for stmt in anc.body
            )
            if not in_body:
                continue
            for handler in anc.handlers:
                if _handler_names(handler) & _COVERS_OSERROR:
                    if _handler_wraps_or_swallows(handler):
                        return True
                    return False  # catches it, then leaks it raw: finding
        return False
