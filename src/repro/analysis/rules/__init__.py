"""Repo-specific lint rules (the SZ invariant catalog).

Each rule machine-checks one contract of the concurrent storage core —
contracts documented in ``docs/serving.md`` / ``docs/storage_format.md``
and, until this package existed, enforced only by reviewer eyeballs:

==== =====================================================================
id   invariant
==== =====================================================================
SZ001 ``acquire()``/``borrow()`` results must be released on every path
SZ002 no blocking I/O while holding a serving-path lock
SZ003 tmp-file writes must clean up their tmp on failure
SZ004 the storage layer never lets a raw ``OSError`` escape
SZ005 locks are constructed only via the lockcheck factory
SZ006 public mutating methods of lock-owning classes hold their lock
==== =====================================================================

Rules are small AST passes over one :class:`~repro.analysis.engine.ModuleContext`
at a time; ``ALL_RULES`` is the registry the engine and CLI consume.  See
``docs/static_analysis.md`` for each rule's serving-contract rationale and
its known (deliberate) limits.
"""

from __future__ import annotations

from repro.analysis.rules.base import Rule
from repro.analysis.rules.errors import SZ004
from repro.analysis.rules.locks import SZ002, SZ005, SZ006
from repro.analysis.rules.resources import SZ001, SZ003

__all__ = ["ALL_RULES", "Rule", "rule_by_id"]

ALL_RULES = [SZ001(), SZ002(), SZ003(), SZ004(), SZ005(), SZ006()]


def rule_by_id(rule_id: str):
    for rule in ALL_RULES:
        if rule.id == rule_id:
            return rule
    raise KeyError(rule_id)
