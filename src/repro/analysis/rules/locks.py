"""Lock-discipline rules: SZ002 (no I/O under a lock), SZ005 (lock
factory), SZ006 (mutators hold the owning lock)."""

from __future__ import annotations

import ast

from repro.analysis.engine import dotted_name
from repro.analysis.rules.base import Rule

#: calls that perform (or transitively wrap) blocking file I/O.  Exact
#: dotted names for stdlib entry points; bare method names only for this
#: repo's unmistakable I/O wrappers (``str.replace`` is why ``os.replace``
#: must be matched in full).
_IO_DOTTED = {
    "open",
    "os.replace",
    "os.remove",
    "os.unlink",
    "os.rename",
    "os.makedirs",
    "os.listdir",
    "os.fsync",
    "os.stat",
    "os.path.getsize",
    "mmap.mmap",
    "Segment.open",
    "ShardedSegment.open",
    "seglib.Segment.open",
    "seglib.ShardedSegment.open",
}
_IO_METHODS = {
    "load_segment",
    "flush_segment",
    "save_manifest",
    "open_segment",
    "remove_segment",
}

_LOCK_CONSTRUCTORS = {
    "threading.Lock",
    "threading.RLock",
    "Lock",
    "RLock",
    "make_lock",
    "make_rlock",
    "lockcheck.make_lock",
    "lockcheck.make_rlock",
}

#: attribute-method calls that mutate a container in place
_MUTATORS = {
    "append",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
    "move_to_end",
}


def _is_io_call(node: ast.Call) -> str | None:
    """The dotted I/O name when ``node`` is a blocking-I/O call, else None."""
    name = dotted_name(node.func)
    if name is None:
        return None
    if name in _IO_DOTTED:
        return name
    last = name.rsplit(".", 1)[-1]
    if last in _IO_METHODS:
        return name
    return None


def _self_attr(node: ast.AST) -> str | None:
    """``attr`` when node is exactly ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_attrs_of_class(cls: ast.ClassDef) -> set[str]:
    """Attributes assigned a lock in ``__init__`` (factory or raw)."""
    out: set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                ctor = dotted_name(node.value.func)
                if ctor not in _LOCK_CONSTRUCTORS:
                    continue
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        out.add(attr)
    return out


def _walk_body(stmts):
    """Walk statements without descending into nested def/class bodies
    (their execution is deferred; they do not run under the ``with``)."""
    for stmt in stmts:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield stmt
        for child in ast.iter_child_nodes(stmt):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield from _walk_node(child)


def _walk_node(node):
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield from _walk_node(child)


class SZ002(Rule):
    id = "SZ002"
    title = "no blocking I/O while holding a serving-path lock"
    rationale = (
        "Segment opens, flushes, and unlinks run outside `with self._lock:` "
        "bodies: one thread's disk wait must never stall every borrower of "
        "the catalog/store lock (docs/serving.md, 'the catalog lock is held "
        "only for the cache bookkeeping')."
    )
    scope = ("core/", "storage/")

    def check(self, ctx):
        io_summary = self._transitive_io(ctx)
        for func_name, func in ctx.functions.items():
            # _walk_body skips nested defs — they have their own entry here
            for node in _walk_body(func.body):
                if not isinstance(node, ast.With):
                    continue
                lock_attr = None
                for item in node.items:
                    attr = _self_attr(item.context_expr)
                    if attr is not None and "lock" in attr:
                        lock_attr = attr
                        break
                if lock_attr is None:
                    continue
                for inner in _walk_body(node.body):
                    if not isinstance(inner, ast.Call):
                        continue
                    direct = _is_io_call(inner)
                    if direct is not None:
                        yield ctx.finding(
                            self.id,
                            inner,
                            f"blocking I/O ({direct}) inside "
                            f"`with self.{lock_attr}:` — run segment "
                            "opens/writes outside the lock",
                        )
                        continue
                    callee = self._resolve_local_call(ctx, func_name, inner)
                    if callee is not None and io_summary.get(callee):
                        reasons = ", ".join(sorted(io_summary[callee]))
                        yield ctx.finding(
                            self.id,
                            inner,
                            f"call to {callee}() inside "
                            f"`with self.{lock_attr}:` performs blocking "
                            f"I/O ({reasons}) — run it outside the lock",
                        )

    @staticmethod
    def _resolve_local_call(ctx, caller_scope: str, call: ast.Call) -> str | None:
        """Resolve ``self.m(...)`` to ``Class.m`` and ``f(...)`` to a
        module-level function of the same file; None for externals."""
        attr = _self_attr(call.func)
        if attr is not None:
            if "." in caller_scope:
                cls = caller_scope.rsplit(".", 1)[0]
                candidate = f"{cls}.{attr}"
                if candidate in ctx.functions:
                    return candidate
            return None
        if isinstance(call.func, ast.Name) and call.func.id in ctx.functions:
            return call.func.id
        return None

    @classmethod
    def _transitive_io(cls, ctx) -> dict[str, set[str]]:
        """Per function (dotted scope): the I/O calls it performs,
        directly or through same-module callees (fixpoint)."""
        direct: dict[str, set[str]] = {}
        calls: dict[str, set[str]] = {}
        for name, func in ctx.functions.items():
            direct[name] = set()
            calls[name] = set()
            for node in _walk_body(func.body):
                if not isinstance(node, ast.Call):
                    continue
                io_name = _is_io_call(node)
                if io_name is not None:
                    direct[name].add(io_name)
                    continue
                callee = cls._resolve_local_call(ctx, name, node)
                if callee is not None:
                    calls[name].add(callee)
        changed = True
        while changed:
            changed = False
            for name in direct:
                for callee in calls[name]:
                    extra = direct.get(callee, set()) - direct[name]
                    if extra:
                        direct[name] |= extra
                        changed = True
        return direct


class SZ005(Rule):
    id = "SZ005"
    title = "locks are constructed only via the lockcheck factory"
    rationale = (
        "repro.analysis.lockcheck.make_lock/make_rlock return plain locks "
        "normally and instrumented locks under REPRO_LOCKCHECK=1; a raw "
        "threading.Lock() is invisible to the lock-order validator."
    )
    scope = ()

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name not in ("threading.Lock", "threading.RLock"):
                # bare Lock()/RLock() only counts when imported from threading
                if name not in ("Lock", "RLock") or not self._imported_from_threading(
                    ctx, name
                ):
                    continue
            kind = "make_rlock" if (name or "").endswith("RLock") else "make_lock"
            yield ctx.finding(
                self.id,
                node,
                f"direct {name}() construction — use "
                f"repro.analysis.lockcheck.{kind}(name) so REPRO_LOCKCHECK "
                "can validate lock ordering",
            )

    @staticmethod
    def _imported_from_threading(ctx, name: str) -> bool:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "threading":
                if any(alias.name == name for alias in node.names):
                    return True
        return False


class SZ006(Rule):
    id = "SZ006"
    title = "public mutating methods of lock-owning classes hold their lock"
    rationale = (
        "A class that constructs a lock declares shared mutable state; a "
        "public method that mutates `self` outside every `with self.<lock>:` "
        "block is a data race waiting for the serving workload that hits it."
    )
    scope = ("core/", "storage/")

    def check(self, ctx):
        for cls_name, cls in ctx.classes.items():
            lock_attrs = _lock_attrs_of_class(cls)
            if not lock_attrs:
                continue
            for stmt in cls.body:
                if not isinstance(stmt, ast.FunctionDef):
                    continue
                if stmt.name.startswith("_"):
                    continue  # dunder + private: callers hold the lock
                if self._is_non_instance(stmt):
                    continue
                node = self._first_unlocked_mutation(stmt, lock_attrs)
                if node is not None:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"public method {cls_name}.{stmt.name}() mutates "
                        "self outside every "
                        f"`with self.{{{ '|'.join(sorted(lock_attrs)) }}}:` "
                        "block",
                    )

    @staticmethod
    def _is_non_instance(func: ast.FunctionDef) -> bool:
        for deco in func.decorator_list:
            name = dotted_name(deco) or ""
            if name.rsplit(".", 1)[-1] in (
                "staticmethod",
                "classmethod",
                "property",
                "cached_property",
            ):
                return True
        return False

    @classmethod
    def _first_unlocked_mutation(
        cls, func: ast.FunctionDef, lock_attrs: set[str]
    ) -> ast.AST | None:
        return cls._scan(func.body, lock_attrs, locked=False)

    @classmethod
    def _scan(cls, stmts, lock_attrs: set[str], locked: bool) -> ast.AST | None:
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, ast.With):
                inner_locked = locked or any(
                    (_self_attr(item.context_expr) or "") in lock_attrs
                    for item in stmt.items
                )
                hit = cls._scan(stmt.body, lock_attrs, inner_locked)
                if hit is not None:
                    return hit
                continue
            if not locked:
                hit = cls._mutation_in(stmt)
                if hit is not None:
                    return hit
            # recurse into compound statements (if/for/try/...) at the
            # same lock state
            for field_name in ("body", "orelse", "finalbody"):
                body = getattr(stmt, field_name, None)
                if body:
                    hit = cls._scan(body, lock_attrs, locked)
                    if hit is not None:
                        return hit
            for handler in getattr(stmt, "handlers", ()):
                hit = cls._scan(handler.body, lock_attrs, locked)
                if hit is not None:
                    return hit
        return None

    @staticmethod
    def _mutation_in(stmt: ast.stmt) -> ast.AST | None:
        """The first self-mutation in this single statement (ignoring
        nested compound bodies, which the caller scans separately)."""

        def roots_at_self(node: ast.AST) -> bool:
            while isinstance(node, (ast.Attribute, ast.Subscript)):
                node = node.value
            return isinstance(node, ast.Name) and node.id == "self"

        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                elts = target.elts if isinstance(target, ast.Tuple) else [target]
                for elt in elts:
                    if isinstance(
                        elt, (ast.Attribute, ast.Subscript)
                    ) and roots_at_self(elt):
                        return stmt
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(
                    target, (ast.Attribute, ast.Subscript)
                ) and roots_at_self(target):
                    return stmt
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(func.value, (ast.Attribute, ast.Subscript))
                and roots_at_self(func.value)
            ):
                return stmt
        return None
