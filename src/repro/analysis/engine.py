"""Rule-engine core for the repo-invariant linter (``python -m repro.analysis``).

The serving core's correctness rests on contracts no general-purpose linter
knows about: refcounted ``Segment.acquire``/``close`` pairing, catalog
``borrow``/``release`` pinning, "segment opens run outside the catalog
lock", tmp-write + atomic rename, "storage never leaks a raw ``OSError``".
This engine machine-checks them: it walks the package AST once per file and
hands each module to a set of repo-specific rules
(:mod:`repro.analysis.rules`), then filters the findings through two
suppression layers:

* **Inline suppressions** — ``# szlint: ignore[SZ001] -- reason`` on the
  finding's line (or on a comment line directly above it).  The reason is
  mandatory: a suppression without one is itself reported (SZ000), because
  an unexplained exemption is exactly the reviewer-eyeball fragility this
  tool exists to remove.  Comments are found with :mod:`tokenize`, so the
  syntax appearing inside a docstring (like this one) is inert.
* **A committed JSON baseline** — grandfathered findings keyed by
  ``(rule, path, symbol)`` (line numbers shift; symbols rarely do), each
  with a mandatory one-line justification.  New findings fail the run;
  baselined ones are reported as such; baseline entries that no longer
  match anything are listed as stale so the file shrinks over time.

Output formats: ``text`` (human), ``json`` (tooling), ``github`` (workflow
commands that annotate the PR diff).  Exit status is the contract CI gates
on: 0 when every finding is suppressed or baselined, 1 otherwise.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field

__all__ = [
    "Baseline",
    "Finding",
    "ModuleContext",
    "Report",
    "dotted_name",
    "format_report",
    "iter_python_files",
    "run",
]

#: rule id for engine-level findings (malformed suppression comments)
META_RULE = "SZ000"

_SUPPRESS_RE = re.compile(
    r"szlint:\s*ignore\[(?P<ids>[A-Za-z0-9_*,\s]+)\]\s*(?:--\s*(?P<reason>\S.*))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  #: path relative to the scan root (stable across machines)
    line: int
    col: int
    symbol: str  #: dotted enclosing scope, e.g. ``StoreCatalog.borrow``
    message: str

    @property
    def key(self) -> tuple[str, str, str]:
        """The baseline identity: line numbers shift, symbols rarely do."""
        return (self.rule, self.path, self.symbol)

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }


@dataclass
class _Suppression:
    line: int
    ids: frozenset[str]
    reason: str | None
    used: bool = False

    def covers(self, rule: str) -> bool:
        return "*" in self.ids or rule in self.ids


class ModuleContext:
    """One parsed source file plus the lookups every rule needs."""

    def __init__(self, path: str, relpath: str, source: str):
        self.path = path
        self.relpath = relpath.replace(os.sep, "/")
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        #: node -> enclosing dotted scope name ("<module>" at top level)
        self._scope: dict[ast.AST, str] = {}
        #: dotted scope name -> FunctionDef/AsyncFunctionDef node
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        #: dotted scope name -> ClassDef node
        self.classes: dict[str, ast.ClassDef] = {}
        #: node -> parent node
        self.parents: dict[ast.AST, ast.AST] = {}
        self._index()
        self.suppressions = self._scan_suppressions()

    def _index(self) -> None:
        def walk(node: ast.AST, scope: str) -> None:
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
                child_scope = scope
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    child_scope = f"{scope}.{child.name}" if scope != "<module>" else child.name
                    self.functions[child_scope] = child
                elif isinstance(child, ast.ClassDef):
                    child_scope = f"{scope}.{child.name}" if scope != "<module>" else child.name
                    self.classes[child_scope] = child
                self._scope[child] = child_scope
                walk(child, child_scope)

        self._scope[self.tree] = "<module>"
        walk(self.tree, "<module>")

    def scope_of(self, node: ast.AST) -> str:
        """The dotted scope enclosing ``node`` (including itself for defs)."""
        return self._scope.get(node, "<module>")

    def symbol_for(self, node: ast.AST) -> str:
        """Baseline symbol for a finding at ``node``: its enclosing scope."""
        return self.scope_of(node)

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST):
        cur = self.parents.get(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(cur)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        for anc in self.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc
        return None

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule,
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            symbol=self.symbol_for(node),
            message=message,
        )

    # -- suppressions ---------------------------------------------------------

    def _scan_suppressions(self) -> dict[int, _Suppression]:
        """Real comment tokens only — the syntax inside a docstring is inert."""
        out: dict[int, _Suppression] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                match = _SUPPRESS_RE.search(tok.string)
                if not match:
                    continue
                ids = frozenset(
                    part.strip()
                    for part in match.group("ids").split(",")
                    if part.strip()
                )
                line = tok.start[0]
                # a comment standing on its own line covers the next line
                prefix = self.lines[line - 1][: tok.start[1]] if line <= len(self.lines) else ""
                target = line + 1 if not prefix.strip() else line
                out[target] = _Suppression(
                    line=line, ids=ids, reason=match.group("reason")
                )
        except tokenize.TokenError:
            pass
        return out

    def suppression_findings(self) -> list[Finding]:
        """Malformed suppressions: an exemption without a reason is itself
        a finding — unexplained exemptions are the fragility this tool
        exists to remove."""
        out = []
        for supp in self.suppressions.values():
            if supp.reason is None:
                out.append(
                    Finding(
                        rule=META_RULE,
                        path=self.relpath,
                        line=supp.line,
                        col=1,
                        symbol="<suppression>",
                        message=(
                            "suppression comment is missing its reason: write "
                            "'# szlint: ignore[RULE] -- why this is safe'"
                        ),
                    )
                )
        return out

    def is_suppressed(self, finding: Finding) -> bool:
        supp = self.suppressions.get(finding.line)
        if supp is not None and supp.reason is not None and supp.covers(finding.rule):
            supp.used = True
            return True
        return False


# -- helpers shared by the rules ----------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``os.path.getsize`` for nested attributes, ``open`` for names; None
    for anything not a plain dotted chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# -- baseline -----------------------------------------------------------------


class Baseline:
    """Committed grandfather list: ``(rule, path, symbol)`` -> justification."""

    VERSION = 1

    def __init__(self, entries: dict[tuple[str, str, str], str] | None = None):
        self.entries = dict(entries or {})
        self._used: set[tuple[str, str, str]] = set()

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, encoding="utf-8") as fh:
            obj = json.load(fh)
        if obj.get("version", 0) > cls.VERSION:
            raise ValueError(
                f"baseline {path!r} has version {obj['version']}, newer than "
                f"supported {cls.VERSION}"
            )
        entries = {}
        for entry in obj.get("entries", []):
            key = (entry["rule"], entry["path"], entry["symbol"])
            justification = entry.get("justification", "").strip()
            if not justification:
                raise ValueError(
                    f"baseline {path!r}: entry {key} has no justification — "
                    "every grandfathered finding must say why"
                )
            entries[key] = justification
        return cls(entries)

    def save(self, path: str) -> None:
        payload = {
            "version": self.VERSION,
            "entries": [
                {
                    "rule": rule,
                    "path": rel,
                    "symbol": symbol,
                    "justification": justification,
                }
                for (rule, rel, symbol), justification in sorted(self.entries.items())
            ],
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def covers(self, finding: Finding) -> bool:
        if finding.key in self.entries:
            self._used.add(finding.key)
            return True
        return False

    def stale_entries(self) -> list[tuple[str, str, str]]:
        return sorted(set(self.entries) - self._used)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(
            {
                f.key: "TODO: justify or fix (auto-generated by --write-baseline)"
                for f in findings
            }
        )


# -- engine -------------------------------------------------------------------


@dataclass
class Report:
    """Everything one engine run produced."""

    #: findings that gate (not suppressed, not baselined), sorted
    findings: list[Finding] = field(default_factory=list)
    #: findings matched by a baseline entry
    baselined: list[Finding] = field(default_factory=list)
    #: count of findings silenced by inline suppressions
    suppressed: int = 0
    #: baseline entries that matched nothing this run
    stale_baseline: list[tuple[str, str, str]] = field(default_factory=list)
    #: files that failed to parse: (path, error)
    errors: list[tuple[str, str]] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "findings": [f.to_json() for f in self.findings],
            "baselined": [f.to_json() for f in self.baselined],
            "suppressed": self.suppressed,
            "stale_baseline": [
                {"rule": r, "path": p, "symbol": s} for r, p, s in self.stale_baseline
            ],
            "errors": [{"path": p, "error": e} for p, e in self.errors],
        }


def iter_python_files(root: str):
    """Yield ``(abspath, relpath)`` for every ``.py`` under ``root`` (or the
    file itself), skipping caches, sorted for deterministic output."""
    if os.path.isfile(root):
        yield root, os.path.basename(root)
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if d not in ("__pycache__", ".git")
        )
        for name in sorted(filenames):
            if name.endswith(".py"):
                path = os.path.join(dirpath, name)
                yield path, os.path.relpath(path, root)


def run(
    paths: list[str],
    rules=None,
    baseline: Baseline | None = None,
) -> Report:
    """Check every file under ``paths`` with ``rules`` (default: all)."""
    if rules is None:
        from repro.analysis.rules import ALL_RULES

        rules = ALL_RULES
    report = Report()
    raw: list[tuple[ModuleContext, Finding]] = []
    for root in paths:
        for path, relpath in iter_python_files(root):
            try:
                with open(path, encoding="utf-8") as fh:
                    source = fh.read()
                ctx = ModuleContext(path, relpath, source)
            except (OSError, SyntaxError, ValueError) as exc:
                report.errors.append((relpath, str(exc)))
                continue
            report.files_checked += 1
            for finding in ctx.suppression_findings():
                raw.append((ctx, finding))
            for rule in rules:
                if rule.scope and not any(
                    part in ctx.relpath for part in rule.scope
                ):
                    continue
                for finding in rule.check(ctx):
                    raw.append((ctx, finding))
    for ctx, finding in raw:
        if finding.rule != META_RULE and ctx.is_suppressed(finding):
            report.suppressed += 1
        elif baseline is not None and baseline.covers(finding):
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    if baseline is not None:
        report.stale_baseline = baseline.stale_entries()
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report.baselined.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


# -- output -------------------------------------------------------------------


def format_report(report: Report, fmt: str = "text") -> str:
    if fmt == "json":
        return json.dumps(report.to_json(), indent=2, sort_keys=True)
    if fmt == "github":
        out = []
        for path, error in report.errors:
            out.append(f"::error file={path},title=parse-error::{error}")
        for f in report.findings:
            message = f"[{f.symbol}] {f.message}"
            out.append(
                f"::error file={f.path},line={f.line},col={f.col},"
                f"title={f.rule}::{message}"
            )
        summary = (
            f"{len(report.findings)} finding(s), {len(report.baselined)} "
            f"baselined, {report.suppressed} suppressed, "
            f"{report.files_checked} files"
        )
        out.append(f"::notice title=repro.analysis::{summary}")
        return "\n".join(out)
    if fmt != "text":
        raise ValueError(f"unknown format {fmt!r} (text|json|github)")
    out = []
    for path, error in report.errors:
        out.append(f"{path}: PARSE ERROR: {error}")
    for f in report.findings:
        out.append(f"{f.path}:{f.line}:{f.col}: {f.rule} [{f.symbol}] {f.message}")
    if report.baselined:
        out.append("")
        out.append(f"baselined ({len(report.baselined)} grandfathered):")
        for f in report.baselined:
            out.append(f"  {f.path}:{f.line}: {f.rule} [{f.symbol}]")
    if report.stale_baseline:
        out.append("")
        out.append("stale baseline entries (matched nothing — prune them):")
        for rule, path, symbol in report.stale_baseline:
            out.append(f"  {rule} {path} [{symbol}]")
    out.append("")
    verdict = "OK" if report.ok else "FAIL"
    out.append(
        f"{verdict}: {len(report.findings)} finding(s), "
        f"{len(report.baselined)} baselined, {report.suppressed} suppressed, "
        f"{report.files_checked} files checked"
    )
    return "\n".join(out)
