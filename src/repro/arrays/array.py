"""The dense array object operators consume and produce.

:class:`SciArray` binds an :class:`~repro.arrays.schema.ArraySchema` to a
numpy buffer.  Single-attribute arrays (the common case throughout the
benchmarks) are stored as a plain ndarray; multi-attribute arrays are stored
as one ndarray per attribute, which keeps vectorised math simple.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.arrays import coords as C
from repro.arrays.schema import ArraySchema
from repro.errors import CoordinateError, SchemaError

__all__ = ["SciArray"]


class SciArray:
    """A dense, multi-dimensional array with named, typed attributes.

    The lineage system treats arrays as opaque except for their shape and
    the coordinates of their cells; operators read and write attribute
    buffers through :meth:`values` / :meth:`set_values`.
    """

    __slots__ = ("schema", "_data")

    def __init__(self, schema: ArraySchema, data: Mapping[str, np.ndarray]):
        self.schema = schema
        self._data: dict[str, np.ndarray] = {}
        missing = set(schema.attr_names) - set(data)
        if missing:
            raise SchemaError(f"missing attribute buffers: {sorted(missing)}")
        for attr in schema.attrs:
            buf = np.asarray(data[attr.name])
            if buf.shape != schema.shape:
                raise SchemaError(
                    f"attribute {attr.name!r} buffer shape {buf.shape} != schema shape {schema.shape}"
                )
            self._data[attr.name] = buf.astype(attr.dtype, copy=False)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_numpy(cls, values: np.ndarray, name: str = "array", attr_name: str = "value") -> "SciArray":
        """Wrap a plain ndarray as a single-attribute array."""
        values = np.asarray(values)
        schema = ArraySchema.dense(values.shape, values.dtype, name=name, attr_name=attr_name)
        return cls(schema, {attr_name: values})

    @classmethod
    def zeros(cls, schema: ArraySchema) -> "SciArray":
        return cls(schema, {a.name: np.zeros(schema.shape, dtype=a.dtype) for a in schema.attrs})

    @classmethod
    def full(cls, schema: ArraySchema, fill_value) -> "SciArray":
        return cls(
            schema,
            {a.name: np.full(schema.shape, fill_value, dtype=a.dtype) for a in schema.attrs},
        )

    # -- shape & size ----------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.schema.shape

    @property
    def ndim(self) -> int:
        return self.schema.ndim

    @property
    def size(self) -> int:
        return self.schema.size

    @property
    def nbytes(self) -> int:
        return int(sum(buf.nbytes for buf in self._data.values()))

    # -- attribute access --------------------------------------------------------

    def values(self, attr: str | None = None) -> np.ndarray:
        """The buffer for ``attr`` (default attribute when omitted).

        The returned ndarray is the live buffer, not a copy; operators that
        mutate it must copy first (workflow outputs are new arrays).
        """
        name = attr or self.schema.default_attr.name
        if name not in self._data:
            raise SchemaError(f"array {self.schema.name!r} has no attribute {name!r}")
        return self._data[name]

    def set_values(self, values: np.ndarray, attr: str | None = None) -> None:
        name = attr or self.schema.default_attr.name
        attr_decl = self.schema.attr(name)
        values = np.asarray(values)
        if values.shape != self.shape:
            raise SchemaError(
                f"buffer shape {values.shape} does not match array shape {self.shape}"
            )
        self._data[name] = values.astype(attr_decl.dtype, copy=False)

    # -- cell access --------------------------------------------------------------

    def cell(self, coord: Sequence[int], attr: str | None = None):
        """Scalar value of one cell (for tests and tiny examples)."""
        arr = C.validate_coords(np.asarray([coord]), self.shape)
        return self.values(attr)[tuple(arr[0])]

    def cells_at(self, coords: np.ndarray, attr: str | None = None) -> np.ndarray:
        """Vectorised gather of cell values at ``coords``."""
        arr = C.validate_coords(coords, self.shape)
        if arr.shape[0] == 0:
            return np.empty(0, dtype=self.schema.attr(attr or self.schema.default_attr.name).dtype)
        return self.values(attr)[tuple(arr.T)]

    def coords_where(self, predicate, attr: str | None = None) -> np.ndarray:
        """Coordinates of every cell whose value satisfies ``predicate``.

        ``predicate`` receives the whole buffer and must return a boolean
        mask — e.g. ``lambda v: v > 0``.
        """
        mask = np.asarray(predicate(self.values(attr)), dtype=bool)
        if mask.shape != self.shape:
            raise CoordinateError("predicate must return a mask of the array's shape")
        return C.mask_to_coords(mask)

    # -- conveniences --------------------------------------------------------------

    def copy(self) -> "SciArray":
        return SciArray(self.schema, {k: v.copy() for k, v in self._data.items()})

    def rename(self, name: str) -> "SciArray":
        return SciArray(self.schema.with_name(name), self._data)

    def allclose(self, other: "SciArray", **kwargs) -> bool:
        if self.schema.shape != other.schema.shape or self.schema.attr_names != other.schema.attr_names:
            return False
        return all(
            np.allclose(self._data[a], other._data[a], **kwargs) for a in self.schema.attr_names
        )

    def __repr__(self) -> str:
        return f"SciArray({self.schema})"
