"""No-overwrite array version store.

SciDB is "no overwrite": every operator output is persisted as a new, named
version (§IV).  SubZero leans on this twice — it *is* the black-box lineage
(the stored inputs/outputs are sufficient to re-run any operator), and it
lets lineage stores be treated as a disposable cache.

:class:`VersionStore` keeps every version in memory and can spill buffers to
``.npy`` files under a directory so the benchmark harness can charge the
workflow's base storage cost the same way the paper does.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.arrays.array import SciArray
from repro.errors import VersionError

__all__ = ["ArrayVersion", "VersionStore"]


@dataclass(frozen=True)
class ArrayVersion:
    """One immutable, named snapshot of an array.

    ``parents`` are the version ids of the operator inputs that produced this
    version (empty for workflow inputs); ``producer`` names the operator node.
    """

    version_id: int
    name: str
    array: SciArray
    parents: tuple[int, ...] = ()
    producer: str | None = None
    sequence: int = 0

    @property
    def nbytes(self) -> int:
        return self.array.nbytes


class VersionStore:
    """Append-only store of :class:`ArrayVersion` objects.

    Versions are keyed by a monotonically increasing integer id.  A *name*
    (e.g. the workflow node that produced the array) may have many versions;
    :meth:`latest` returns the newest one.
    """

    def __init__(self, spill_dir: str | None = None):
        self._versions: dict[int, ArrayVersion] = {}
        self._by_name: dict[str, list[int]] = {}
        self._next_id = 0
        self._spill_dir = spill_dir
        if spill_dir is not None:
            os.makedirs(spill_dir, exist_ok=True)

    # -- writes ----------------------------------------------------------------

    def put(
        self,
        name: str,
        array: SciArray,
        parents: tuple[int, ...] = (),
        producer: str | None = None,
    ) -> ArrayVersion:
        """Persist ``array`` as a brand-new version of ``name``."""
        for parent in parents:
            if parent not in self._versions:
                raise VersionError(f"unknown parent version id {parent}")
        vid = self._next_id
        self._next_id += 1
        version = ArrayVersion(
            version_id=vid,
            name=name,
            array=array,
            parents=tuple(parents),
            producer=producer,
            sequence=len(self._by_name.get(name, ())),
        )
        self._versions[vid] = version
        self._by_name.setdefault(name, []).append(vid)
        if self._spill_dir is not None:
            self._spill(version)
        return version

    def _spill(self, version: ArrayVersion) -> None:
        base = os.path.join(self._spill_dir, f"v{version.version_id:06d}")
        for attr in version.array.schema.attr_names:
            np.save(f"{base}.{attr}.npy", version.array.values(attr))

    # -- reads ------------------------------------------------------------------

    def get(self, version_id: int) -> ArrayVersion:
        try:
            return self._versions[version_id]
        except KeyError:
            raise VersionError(f"unknown version id {version_id}") from None

    def latest(self, name: str) -> ArrayVersion:
        ids = self._by_name.get(name)
        if not ids:
            raise VersionError(f"no versions recorded under name {name!r}")
        return self._versions[ids[-1]]

    def history(self, name: str) -> list[ArrayVersion]:
        return [self._versions[i] for i in self._by_name.get(name, [])]

    def names(self) -> list[str]:
        return sorted(self._by_name)

    def __len__(self) -> int:
        return len(self._versions)

    def __contains__(self, version_id: int) -> bool:
        return version_id in self._versions

    # -- accounting ---------------------------------------------------------------

    def total_bytes(self) -> int:
        """Bytes held across every version (the workflow's base storage)."""
        return sum(v.nbytes for v in self._versions.values())

    def input_bytes(self) -> int:
        """Bytes held by versions with no parents (the raw workflow inputs)."""
        return sum(v.nbytes for v in self._versions.values() if not v.parents)
