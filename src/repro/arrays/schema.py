"""Array schemas: named dimensions and named, typed attributes.

Mirrors the SciDB data model the paper assumes (§IV): an array has a fixed
number of dimensions, each with an extent, and every cell carries the same
record of one or more named, typed fields.  The lineage machinery only ever
needs coordinates and shapes, but operators use schemas to validate their
inputs and to declare their outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import SchemaError

__all__ = ["Dimension", "Attribute", "ArraySchema"]

_IDENT_OK = staticmethod


def _check_name(name: str, kind: str) -> str:
    if not isinstance(name, str) or not name:
        raise SchemaError(f"{kind} name must be a non-empty string; got {name!r}")
    if not (name[0].isalpha() or name[0] == "_") or not all(
        c.isalnum() or c == "_" for c in name
    ):
        raise SchemaError(f"{kind} name {name!r} is not a valid identifier")
    return name


@dataclass(frozen=True)
class Dimension:
    """A named array dimension with a fixed extent (length)."""

    name: str
    length: int

    def __post_init__(self) -> None:
        _check_name(self.name, "dimension")
        if not isinstance(self.length, (int, np.integer)) or self.length <= 0:
            raise SchemaError(
                f"dimension {self.name!r} must have a positive length; got {self.length!r}"
            )
        object.__setattr__(self, "length", int(self.length))


@dataclass(frozen=True)
class Attribute:
    """A named, typed cell field."""

    name: str
    dtype: np.dtype = field(default=np.dtype(np.float64))

    def __post_init__(self) -> None:
        _check_name(self.name, "attribute")
        try:
            object.__setattr__(self, "dtype", np.dtype(self.dtype))
        except TypeError as exc:
            raise SchemaError(f"attribute {self.name!r} has invalid dtype: {exc}") from exc


@dataclass(frozen=True)
class ArraySchema:
    """Shape-and-type description of a SubZero array.

    Use :meth:`dense` for the common single-attribute case::

        schema = ArraySchema.dense((512, 2000), np.float32, name="image")
    """

    dims: tuple[Dimension, ...]
    attrs: tuple[Attribute, ...]
    name: str = "array"

    def __post_init__(self) -> None:
        if not self.dims:
            raise SchemaError("an array needs at least one dimension")
        if not self.attrs:
            raise SchemaError("an array needs at least one attribute")
        object.__setattr__(self, "dims", tuple(self.dims))
        object.__setattr__(self, "attrs", tuple(self.attrs))
        dim_names = [d.name for d in self.dims]
        attr_names = [a.name for a in self.attrs]
        if len(set(dim_names)) != len(dim_names):
            raise SchemaError(f"duplicate dimension names: {dim_names}")
        if len(set(attr_names)) != len(attr_names):
            raise SchemaError(f"duplicate attribute names: {attr_names}")

    # -- factories ---------------------------------------------------------

    @classmethod
    def dense(
        cls,
        shape: Sequence[int],
        dtype=np.float64,
        name: str = "array",
        dim_names: Sequence[str] | None = None,
        attr_name: str = "value",
    ) -> "ArraySchema":
        """Build a single-attribute schema from a plain shape and dtype."""
        if dim_names is None:
            dim_names = [f"d{i}" for i in range(len(shape))]
        if len(dim_names) != len(shape):
            raise SchemaError("dim_names must match the number of dimensions")
        dims = tuple(Dimension(n, int(s)) for n, s in zip(dim_names, shape))
        return cls(dims=dims, attrs=(Attribute(attr_name, np.dtype(dtype)),), name=name)

    # -- derived properties ------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(d.length for d in self.dims)

    @property
    def ndim(self) -> int:
        return len(self.dims)

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))

    @property
    def dim_names(self) -> tuple[str, ...]:
        return tuple(d.name for d in self.dims)

    @property
    def attr_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attrs)

    @property
    def default_attr(self) -> Attribute:
        """The first attribute — what single-attribute operators act on."""
        return self.attrs[0]

    def attr(self, name: str) -> Attribute:
        for a in self.attrs:
            if a.name == name:
                return a
        raise SchemaError(f"schema {self.name!r} has no attribute {name!r}")

    def cell_nbytes(self) -> int:
        """Bytes per cell across all attributes."""
        return int(sum(a.dtype.itemsize for a in self.attrs))

    def nbytes(self) -> int:
        """Total payload bytes for a dense array of this schema."""
        return self.size * self.cell_nbytes()

    # -- transformations ---------------------------------------------------

    def with_shape(self, shape: Sequence[int], name: str | None = None) -> "ArraySchema":
        """Same attributes, new extents (dimension names regenerated on rank change)."""
        if len(shape) == self.ndim:
            dims = tuple(Dimension(d.name, int(s)) for d, s in zip(self.dims, shape))
        else:
            dims = tuple(Dimension(f"d{i}", int(s)) for i, s in enumerate(shape))
        return ArraySchema(dims=dims, attrs=self.attrs, name=name or self.name)

    def with_name(self, name: str) -> "ArraySchema":
        return ArraySchema(dims=self.dims, attrs=self.attrs, name=name)

    def with_dtype(self, dtype) -> "ArraySchema":
        attrs = tuple(Attribute(a.name, np.dtype(dtype)) for a in self.attrs)
        return ArraySchema(dims=self.dims, attrs=attrs, name=self.name)

    def compatible_with(self, other: "ArraySchema") -> bool:
        """True when shapes match (attribute types may differ)."""
        return self.shape == other.shape

    def require_same_shape(self, other: "ArraySchema", context: str = "operator") -> None:
        if self.shape != other.shape:
            raise SchemaError(
                f"{context}: shape mismatch {self.shape} vs {other.shape}"
            )

    def __str__(self) -> str:
        dims = ", ".join(f"{d.name}={d.length}" for d in self.dims)
        attrs = ", ".join(f"{a.name}:{a.dtype}" for a in self.attrs)
        return f"{self.name}<[{dims}] {{{attrs}}}>"
