"""SciDB-like array substrate: schemas, dense arrays, coordinates, versions."""

from repro.arrays.array import SciArray
from repro.arrays.schema import ArraySchema, Attribute, Dimension
from repro.arrays.versions import ArrayVersion, VersionStore

__all__ = [
    "ArraySchema",
    "Attribute",
    "Dimension",
    "SciArray",
    "ArrayVersion",
    "VersionStore",
]
