"""Cell-coordinate utilities.

SubZero identifies every array cell by its integer coordinate vector.  Region
lineage, the encoders, and the query executor all shuttle *sets* of
coordinates around, so this module fixes one canonical in-memory
representation and provides fast conversions:

* a **coordinate array** — ``int64`` ndarray of shape ``(n, ndim)``, one row
  per cell;
* a **packed array** — ``int64`` ndarray of shape ``(n,)`` where each cell is
  bit-packed into a single integer via row-major ravelling against a known
  array shape (the paper bit-packs coordinates into single integers when the
  array is small enough; ravelling is the same trick generalised);
* a **mask** — boolean ndarray with the target array's shape, used by the
  query executor as its deduplicating frontier.

All functions are pure and vectorised; none of them loop over cells in
Python.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import CoordinateError

__all__ = [
    "as_coord_array",
    "pack_coords",
    "unpack_coords",
    "coords_to_mask",
    "mask_to_coords",
    "dedupe_coords",
    "bounding_box",
    "coords_in_box",
    "box_intersects",
    "clip_coords",
    "validate_coords",
    "empty_coords",
    "all_coords",
    "expand_ranges",
    "isin_sorted",
    "unique_coords",
]


def empty_coords(ndim: int) -> np.ndarray:
    """Return an empty coordinate array with ``ndim`` columns."""
    return np.empty((0, int(ndim)), dtype=np.int64)


def as_coord_array(coords: Iterable | np.ndarray, ndim: int | None = None) -> np.ndarray:
    """Coerce ``coords`` into the canonical ``(n, ndim)`` int64 array.

    Accepts a single coordinate tuple, a list of tuples, or an ndarray.  A
    1-D input of length ``ndim`` is treated as a single coordinate.
    """
    arr = np.asarray(coords, dtype=np.int64)
    if arr.ndim == 1:
        if arr.size == 0:
            if ndim is None:
                raise CoordinateError("cannot infer dimensionality of empty coords")
            return empty_coords(ndim)
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise CoordinateError(f"coordinates must be 2-D (n, ndim); got shape {arr.shape}")
    if ndim is not None and arr.shape[1] != ndim:
        raise CoordinateError(
            f"coordinates have {arr.shape[1]} dimensions; expected {ndim}"
        )
    return arr


def validate_coords(coords: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Validate that every coordinate falls inside ``shape``.

    Returns the canonical coordinate array; raises
    :class:`~repro.errors.CoordinateError` on the first violation.
    """
    arr = as_coord_array(coords, ndim=len(shape))
    if arr.size == 0:
        return arr
    shape_arr = np.asarray(shape, dtype=np.int64)
    if (arr < 0).any() or (arr >= shape_arr).any():
        bad = arr[((arr < 0) | (arr >= shape_arr)).any(axis=1)][0]
        raise CoordinateError(f"coordinate {tuple(bad)} outside array shape {tuple(shape)}")
    return arr


def pack_coords(coords: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Bit-pack coordinates into single int64s (row-major ravel order)."""
    arr = validate_coords(coords, shape)
    if arr.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    packed = np.ravel_multi_index(tuple(arr.T), tuple(shape))
    return packed.astype(np.int64, copy=False)


def unpack_coords(packed: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`pack_coords`."""
    packed = np.asarray(packed, dtype=np.int64).ravel()
    if packed.size == 0:
        return empty_coords(len(shape))
    size = int(np.prod(shape))
    if (packed < 0).any() or (packed >= size).any():
        raise CoordinateError("packed coordinate outside array extent")
    unpacked = np.unravel_index(packed, tuple(shape))
    return np.stack(unpacked, axis=1).astype(np.int64, copy=False)


def coords_to_mask(coords: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Render a coordinate set as a boolean mask of the array's shape."""
    mask = np.zeros(tuple(shape), dtype=bool)
    arr = validate_coords(coords, shape)
    if arr.shape[0]:
        mask[tuple(arr.T)] = True
    return mask


def mask_to_coords(mask: np.ndarray) -> np.ndarray:
    """Return the coordinates of every set bit in ``mask``."""
    idx = np.nonzero(np.asarray(mask, dtype=bool))
    if len(idx) == 0:
        return empty_coords(0)
    return np.stack(idx, axis=1).astype(np.int64, copy=False)


def dedupe_coords(coords: np.ndarray) -> np.ndarray:
    """Drop duplicate coordinate rows (order not preserved)."""
    arr = as_coord_array(coords)
    if arr.shape[0] <= 1:
        return arr
    return np.unique(arr, axis=0)


def bounding_box(coords: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return the inclusive ``(lo, hi)`` bounding box of a coordinate set."""
    arr = as_coord_array(coords)
    if arr.shape[0] == 0:
        raise CoordinateError("bounding box of an empty coordinate set is undefined")
    return arr.min(axis=0), arr.max(axis=0)


def coords_in_box(coords: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Boolean row-mask of coordinates inside the inclusive box ``[lo, hi]``."""
    arr = as_coord_array(coords)
    lo = np.asarray(lo, dtype=np.int64)
    hi = np.asarray(hi, dtype=np.int64)
    if arr.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    return ((arr >= lo) & (arr <= hi)).all(axis=1)


def box_intersects(
    lo_a: np.ndarray, hi_a: np.ndarray, lo_b: np.ndarray, hi_b: np.ndarray
) -> bool:
    """True when two inclusive integer boxes overlap in every dimension."""
    return bool(np.all(np.asarray(lo_a) <= np.asarray(hi_b)) and np.all(np.asarray(lo_b) <= np.asarray(hi_a)))


def clip_coords(coords: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Drop coordinate rows that fall outside ``shape``.

    Mapping functions for windowed operators (e.g. convolution) produce
    neighbourhoods that spill past array edges; this trims them.
    """
    arr = as_coord_array(coords, ndim=len(shape))
    if arr.shape[0] == 0:
        return arr
    shape_arr = np.asarray(shape, dtype=np.int64)
    keep = ((arr >= 0) & (arr < shape_arr)).all(axis=1)
    return arr[keep]


def expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate the integer ranges ``[starts[i], starts[i] + counts[i])``.

    One cumulative sum instead of a Python loop: the step is 1 inside a
    range and jumps to the next start where a new range begins.  Shared by
    the batch-probe scan engine and the columnar stores for gathering many
    variable-length slices at once.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    keep = counts > 0
    starts = starts[keep]
    counts = counts[keep]
    step = np.ones(total, dtype=np.int64)
    step[0] = starts[0]
    if starts.size > 1:
        begin = np.cumsum(counts)[:-1]
        step[begin] = starts[1:] - (starts[:-1] + counts[:-1] - 1)
    return np.cumsum(step)


def isin_sorted(values: np.ndarray, sorted_array: np.ndarray) -> np.ndarray:
    """Membership of ``values`` in an ascending-sorted int64 array.

    ``np.isin`` re-sorts its second argument on every call, which is ruinous
    inside per-entry store loops; this binary-searches instead.
    """
    values = np.asarray(values, dtype=np.int64)
    if sorted_array.size == 0:
        return np.zeros(values.shape, dtype=bool)
    pos = np.minimum(
        np.searchsorted(sorted_array, values), sorted_array.size - 1
    )
    return sorted_array[pos] == values


def unique_coords(coords: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Deduplicate coordinates fast by packing against ``shape`` first.

    Orders of magnitude faster than :func:`dedupe_coords` for large sets
    because uniqueness runs on a flat int64 vector.
    """
    arr = as_coord_array(coords, ndim=len(shape))
    if arr.shape[0] <= 1:
        return arr
    return unpack_coords(np.unique(pack_coords(arr, shape)), shape)


def all_coords(shape: Sequence[int]) -> np.ndarray:
    """Every coordinate of an array of ``shape``, in row-major order."""
    size = int(np.prod(shape))
    return unpack_coords(np.arange(size, dtype=np.int64), shape)
