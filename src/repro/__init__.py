"""SubZero — a fine-grained lineage system for scientific databases.

Reproduction of Wu, Madden & Stonebraker, *SubZero: A Fine-Grained Lineage
System for Scientific Databases* (ICDE 2013), built on a from-scratch
SciDB-like array substrate.

Quickstart::

    import numpy as np
    from repro import SubZero, WorkflowSpec, SciArray, ops

    spec = WorkflowSpec(name="demo")
    spec.add_source("image")
    spec.add_node("smooth", ops.Convolve2D(ops.gaussian_kernel(3)), ["image"])
    spec.add_node("bright", ops.Threshold(0.5), ["smooth"])

    sz = SubZero(spec)
    sz.use_mapping_where_possible()
    sz.run({"image": SciArray.from_numpy(np.random.rand(64, 64))})
    result = sz.backward_query([(10, 12)], ["bright", "smooth"])
    print(result.coords)
"""

from repro import ops
from repro.arrays import ArraySchema, Attribute, Dimension, SciArray, VersionStore
from repro.core import (
    ALL_STRATEGIES,
    BLACKBOX,
    COMP_MANY_B,
    COMP_ONE_B,
    FULL_MANY_B,
    FULL_MANY_F,
    FULL_ONE_B,
    FULL_ONE_F,
    MAP,
    PAY_MANY_B,
    PAY_ONE_B,
    Direction,
    EncodingKind,
    Frontier,
    LineageMode,
    LineageQuery,
    Orientation,
    QueryStep,
    RegionPair,
    StorageStrategy,
)
from repro.core.costmodel import CostConstants, CostModel
from repro.core.optimizer import (
    OptimizationResult,
    StrategyOptimizer,
    WorkloadProfile,
)
from repro.core.query import (
    QueryExecutor,
    QueryRequest,
    QueryResult,
    QuerySession,
    StepStats,
)
from repro.core.runtime import LineageRuntime
from repro.core.stats import OperatorStats, StatsCollector
from repro.core.subzero import SubZero
from repro.errors import (
    CoordinateError,
    LineageError,
    OperatorError,
    OptimizationError,
    QueryError,
    SchemaError,
    StorageError,
    SubZeroError,
    VersionError,
    WorkflowError,
)
from repro.ops.base import LineageContext, Operator
from repro.workflow import (
    WorkflowInstance,
    WorkflowSpec,
    execute_workflow,
    recover_instance,
)

__version__ = "0.1.0"

__all__ = [
    "SubZero",
    "WorkflowSpec",
    "WorkflowInstance",
    "execute_workflow",
    "recover_instance",
    "SciArray",
    "ArraySchema",
    "Attribute",
    "Dimension",
    "VersionStore",
    "Operator",
    "LineageContext",
    "ops",
    # lineage model
    "RegionPair",
    "Frontier",
    "LineageQuery",
    "QueryStep",
    "Direction",
    "LineageMode",
    "EncodingKind",
    "Orientation",
    "StorageStrategy",
    "ALL_STRATEGIES",
    "BLACKBOX",
    "MAP",
    "FULL_ONE_B",
    "FULL_ONE_F",
    "FULL_MANY_B",
    "FULL_MANY_F",
    "PAY_ONE_B",
    "PAY_MANY_B",
    "COMP_ONE_B",
    "COMP_MANY_B",
    # engine pieces
    "LineageRuntime",
    "QueryExecutor",
    "QueryRequest",
    "QueryResult",
    "QuerySession",
    "StepStats",
    "StatsCollector",
    "OperatorStats",
    "CostModel",
    "CostConstants",
    "StrategyOptimizer",
    "WorkloadProfile",
    "OptimizationResult",
    # errors
    "SubZeroError",
    "SchemaError",
    "CoordinateError",
    "VersionError",
    "StorageError",
    "WorkflowError",
    "OperatorError",
    "LineageError",
    "QueryError",
    "OptimizationError",
    "__version__",
]
