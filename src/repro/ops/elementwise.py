"""Elementwise built-in operators (one-to-one mapping operators).

These are the paper's canonical mapping operators (§V-A.2): "one-to-one
operators, such as matrix addition, are mapping operators because an output
cell only depends on the input cell at the same coordinate, regardless of
the value."  None of them incur any lineage runtime or storage overhead.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.arrays import coords as C
from repro.arrays.array import SciArray
from repro.arrays.schema import ArraySchema
from repro.core.modes import LineageMode
from repro.errors import OperatorError
from repro.ops.base import Operator

__all__ = [
    "UnaryElementwise",
    "BinaryElementwise",
    "BroadcastCombine",
    "Scale",
    "AddConstant",
    "SubtractConstant",
    "DivideConstant",
    "ClipMin",
    "Clip",
    "AbsoluteValue",
    "SquareRoot",
    "LogTransform",
    "Threshold",
    "Add",
    "Subtract",
    "Multiply",
    "Divide",
    "Minimum",
    "Maximum",
    "PixelMean",
    "BroadcastSubtract",
    "BroadcastDivide",
]

_MAPPING_MODES = frozenset({LineageMode.MAP, LineageMode.BLACKBOX})


class UnaryElementwise(Operator):
    """``out[c] = fn(in[c])`` for a pure vectorised ``fn``."""

    arity = 1
    entire_array_safe = True

    def __init__(self, fn: Callable[[np.ndarray], np.ndarray], name: str | None = None):
        super().__init__(name)
        self._fn = fn

    def compute(self, inputs: list[SciArray]) -> SciArray:
        return SciArray.from_numpy(self._fn(inputs[0].values()), name=self.name)

    def supported_modes(self) -> frozenset[LineageMode]:
        return _MAPPING_MODES

    def map_b_many(self, out_coords: np.ndarray, input_idx: int) -> np.ndarray:
        return C.as_coord_array(out_coords, ndim=len(self.output_shape))

    def map_f_many(self, in_coords: np.ndarray, input_idx: int) -> np.ndarray:
        return C.as_coord_array(in_coords, ndim=len(self.input_shapes[input_idx]))

    def map_b_batch(self, out_coords, input_idx):
        out_coords = C.as_coord_array(out_coords, ndim=len(self.output_shape))
        return out_coords, np.ones(out_coords.shape[0], dtype=np.int64)


class BinaryElementwise(Operator):
    """``out[c] = fn(a[c], b[c])`` over two same-shape inputs."""

    arity = 2
    entire_array_safe = True

    def __init__(
        self,
        fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
        name: str | None = None,
    ):
        super().__init__(name)
        self._fn = fn

    def infer_schema(self, input_schemas) -> ArraySchema:
        input_schemas[0].require_same_shape(input_schemas[1], context=self.name)
        return input_schemas[0]

    def compute(self, inputs: list[SciArray]) -> SciArray:
        return SciArray.from_numpy(
            self._fn(inputs[0].values(), inputs[1].values()), name=self.name
        )

    def supported_modes(self) -> frozenset[LineageMode]:
        return _MAPPING_MODES

    def map_b_many(self, out_coords: np.ndarray, input_idx: int) -> np.ndarray:
        return C.as_coord_array(out_coords, ndim=len(self.output_shape))

    def map_f_many(self, in_coords: np.ndarray, input_idx: int) -> np.ndarray:
        return C.as_coord_array(in_coords, ndim=len(self.input_shapes[input_idx]))

    def map_b_batch(self, out_coords, input_idx):
        out_coords = C.as_coord_array(out_coords, ndim=len(self.output_shape))
        return out_coords, np.ones(out_coords.shape[0], dtype=np.int64)


class BroadcastCombine(Operator):
    """Combine an array with a single-cell array (e.g. subtract a global
    statistic from every pixel).

    Input 0 maps one-to-one; input 1 is a single cell that every output
    depends on, so its forward lineage is the whole output array.
    """

    arity = 2
    entire_array_safe = True

    def __init__(
        self,
        fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
        name: str | None = None,
    ):
        super().__init__(name)
        self._fn = fn

    def infer_schema(self, input_schemas) -> ArraySchema:
        if input_schemas[1].size != 1:
            raise OperatorError(f"{self.name}: second input must be a single cell")
        return input_schemas[0]

    def compute(self, inputs: list[SciArray]) -> SciArray:
        scalar = inputs[1].values().reshape(())
        return SciArray.from_numpy(self._fn(inputs[0].values(), scalar), name=self.name)

    def supported_modes(self) -> frozenset[LineageMode]:
        return _MAPPING_MODES

    def map_b_many(self, out_coords: np.ndarray, input_idx: int) -> np.ndarray:
        out_coords = C.as_coord_array(out_coords, ndim=len(self.output_shape))
        if input_idx == 0:
            return out_coords
        if out_coords.shape[0] == 0:
            return C.empty_coords(len(self.input_shapes[1]))
        return C.all_coords(self.input_shapes[1])

    def map_f_many(self, in_coords: np.ndarray, input_idx: int) -> np.ndarray:
        in_coords = C.as_coord_array(in_coords, ndim=len(self.input_shapes[input_idx]))
        if input_idx == 0:
            return in_coords
        if in_coords.shape[0] == 0:
            return C.empty_coords(len(self.output_shape))
        return C.all_coords(self.output_shape)

    def map_b_batch(self, out_coords, input_idx):
        out_coords = C.as_coord_array(out_coords, ndim=len(self.output_shape))
        n = out_coords.shape[0]
        ones = np.ones(n, dtype=np.int64)
        if input_idx == 0:
            return out_coords, ones
        # every output cell depends on the one statistic cell
        return np.repeat(C.all_coords(self.input_shapes[1]), n, axis=0), ones


# -- concrete unary built-ins --------------------------------------------------


class Scale(UnaryElementwise):
    def __init__(self, factor: float, name: str | None = None):
        self.factor = float(factor)
        super().__init__(lambda v: v * self.factor, name)


class AddConstant(UnaryElementwise):
    def __init__(self, constant: float, name: str | None = None):
        self.constant = float(constant)
        super().__init__(lambda v: v + self.constant, name)


class SubtractConstant(UnaryElementwise):
    def __init__(self, constant: float, name: str | None = None):
        self.constant = float(constant)
        super().__init__(lambda v: v - self.constant, name)


class DivideConstant(UnaryElementwise):
    def __init__(self, constant: float, name: str | None = None):
        if constant == 0:
            raise OperatorError("cannot divide by zero")
        self.constant = float(constant)
        super().__init__(lambda v: v / self.constant, name)


class ClipMin(UnaryElementwise):
    def __init__(self, lo: float, name: str | None = None):
        self.lo = float(lo)
        super().__init__(lambda v: np.maximum(v, self.lo), name)


class Clip(UnaryElementwise):
    def __init__(self, lo: float, hi: float, name: str | None = None):
        if hi < lo:
            raise OperatorError("clip bounds must satisfy lo <= hi")
        self.lo, self.hi = float(lo), float(hi)
        super().__init__(lambda v: np.clip(v, self.lo, self.hi), name)


class AbsoluteValue(UnaryElementwise):
    def __init__(self, name: str | None = None):
        super().__init__(np.abs, name)


class SquareRoot(UnaryElementwise):
    def __init__(self, name: str | None = None):
        super().__init__(lambda v: np.sqrt(np.maximum(v, 0)), name)


class LogTransform(UnaryElementwise):
    """``log1p`` transform, common in expression-level normalisation."""

    def __init__(self, name: str | None = None):
        super().__init__(lambda v: np.log1p(np.maximum(v, 0)), name)


class Threshold(UnaryElementwise):
    """Binary mask: 1 where ``value > threshold`` else 0."""

    def __init__(self, threshold: float, name: str | None = None):
        self.threshold = float(threshold)
        super().__init__(lambda v: (v > self.threshold).astype(np.float64), name)


# -- concrete binary built-ins -------------------------------------------------


class Add(BinaryElementwise):
    def __init__(self, name: str | None = None):
        super().__init__(np.add, name)


class Subtract(BinaryElementwise):
    def __init__(self, name: str | None = None):
        super().__init__(np.subtract, name)


class Multiply(BinaryElementwise):
    def __init__(self, name: str | None = None):
        super().__init__(np.multiply, name)


class Divide(BinaryElementwise):
    def __init__(self, name: str | None = None):
        super().__init__(lambda a, b: a / np.where(b == 0, 1, b), name)


class Minimum(BinaryElementwise):
    def __init__(self, name: str | None = None):
        super().__init__(np.minimum, name)


class Maximum(BinaryElementwise):
    def __init__(self, name: str | None = None):
        super().__init__(np.maximum, name)


class PixelMean(BinaryElementwise):
    """Per-cell average of two same-shape arrays (image compositing)."""

    def __init__(self, name: str | None = None):
        super().__init__(lambda a, b: (a + b) / 2.0, name)


class BroadcastSubtract(BroadcastCombine):
    def __init__(self, name: str | None = None):
        super().__init__(np.subtract, name)


class BroadcastDivide(BroadcastCombine):
    def __init__(self, name: str | None = None):
        super().__init__(lambda a, b: a / (b if b != 0 else 1.0), name)
