"""Aggregation built-ins: axis reductions, global reductions, standardise.

Axis reductions are mapping operators (the backward lineage of an output
cell is the whole line it reduced over).  Global reductions are the
archetypal all-to-all operators — the anomalous mean-brightness computation
of the paper's astronomy use case (§II-A) is a ``GlobalReduce``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.arrays import coords as C
from repro.arrays.array import SciArray
from repro.arrays.schema import ArraySchema
from repro.core.modes import LineageMode
from repro.errors import OperatorError
from repro.ops.base import Operator

__all__ = ["Reduce", "GlobalReduce", "GlobalMean", "Standardize", "CumulativeSum"]

_MAPPING_MODES = frozenset({LineageMode.MAP, LineageMode.BLACKBOX})


class Reduce(Operator):
    """Reduce along one axis; output drops that axis (1-D inputs become a
    single-cell array)."""

    arity = 1
    entire_array_safe = True

    def __init__(
        self,
        axis: int,
        fn: Callable[..., np.ndarray] = np.sum,
        name: str | None = None,
    ):
        super().__init__(name)
        self.axis = int(axis)
        self._fn = fn

    def infer_schema(self, input_schemas) -> ArraySchema:
        schema = input_schemas[0]
        if not 0 <= self.axis < schema.ndim:
            raise OperatorError(f"{self.name}: axis {self.axis} out of range")
        out = tuple(s for i, s in enumerate(schema.shape) if i != self.axis)
        return schema.with_shape(out or (1,))

    def compute(self, inputs: list[SciArray]) -> SciArray:
        reduced = self._fn(inputs[0].values(), axis=self.axis)
        reduced = np.asarray(reduced).reshape(self.output_shape)
        return SciArray.from_numpy(reduced, name=self.name)

    def supported_modes(self) -> frozenset[LineageMode]:
        return _MAPPING_MODES

    def map_b_many(self, out_coords: np.ndarray, input_idx: int) -> np.ndarray:
        out_coords = C.as_coord_array(out_coords, ndim=len(self.output_shape))
        in_shape = self.input_shapes[0]
        if out_coords.shape[0] == 0:
            return C.empty_coords(len(in_shape))
        if len(in_shape) == 1:
            return C.all_coords(in_shape)
        kept = out_coords if len(self.output_shape) == len(in_shape) - 1 else out_coords[:, :0]
        uniq = np.unique(kept, axis=0)
        extent = in_shape[self.axis]
        line = np.arange(extent, dtype=np.int64)
        n = uniq.shape[0]
        repeated = np.repeat(uniq, extent, axis=0)
        tiled = np.tile(line, n).reshape(-1, 1)
        return np.concatenate(
            [repeated[:, : self.axis], tiled, repeated[:, self.axis:]], axis=1
        )

    def map_f_many(self, in_coords: np.ndarray, input_idx: int) -> np.ndarray:
        in_coords = C.as_coord_array(in_coords, ndim=len(self.input_shapes[0]))
        if in_coords.shape[0] == 0:
            return C.empty_coords(len(self.output_shape))
        if len(self.input_shapes[0]) == 1:
            return np.zeros((1, 1), dtype=np.int64)
        dropped = np.delete(in_coords, self.axis, axis=1)
        return C.unique_coords(dropped, self.output_shape)

    def map_b_batch(self, out_coords, input_idx):
        out_coords = C.as_coord_array(out_coords, ndim=len(self.output_shape))
        in_shape = self.input_shapes[0]
        n = out_coords.shape[0]
        extent = in_shape[self.axis]
        if len(in_shape) == 1:
            cells = np.tile(C.all_coords(in_shape), (n, 1))
            return cells, np.full(n, in_shape[0], dtype=np.int64)
        kept = (
            out_coords
            if len(self.output_shape) == len(in_shape) - 1
            else out_coords[:, :0]
        )
        line = np.arange(extent, dtype=np.int64)
        repeated = np.repeat(kept, extent, axis=0)
        tiled = np.tile(line, n).reshape(-1, 1)
        cells = np.concatenate(
            [repeated[:, : self.axis], tiled, repeated[:, self.axis :]], axis=1
        )
        return cells, np.full(n, extent, dtype=np.int64)


class GlobalReduce(Operator):
    """Reduce the whole array to one cell (all-to-all)."""

    arity = 1
    all_to_all = True
    entire_array_safe = True

    def __init__(self, fn: Callable[[np.ndarray], float] = np.mean, name: str | None = None):
        super().__init__(name)
        self._fn = fn

    def infer_schema(self, input_schemas) -> ArraySchema:
        return input_schemas[0].with_shape((1,))

    def compute(self, inputs: list[SciArray]) -> SciArray:
        value = float(self._fn(inputs[0].values()))
        return SciArray.from_numpy(np.asarray([value]), name=self.name)

    def supported_modes(self) -> frozenset[LineageMode]:
        return _MAPPING_MODES


class GlobalMean(GlobalReduce):
    """Mean of every cell — the astronomy benchmark's background estimate."""

    def __init__(self, name: str | None = None):
        super().__init__(np.mean, name)


class Standardize(Operator):
    """``(v - mean) / std`` with *global* statistics; all-to-all because the
    statistics couple every output to every input."""

    arity = 1
    all_to_all = True
    entire_array_safe = True

    def compute(self, inputs: list[SciArray]) -> SciArray:
        values = inputs[0].values().astype(np.float64)
        std = float(values.std())
        if std == 0.0:
            std = 1.0
        return SciArray.from_numpy((values - values.mean()) / std, name=self.name)

    def supported_modes(self) -> frozenset[LineageMode]:
        return _MAPPING_MODES


class CumulativeSum(Operator):
    """Prefix sums along one axis — a mapping operator with coordinate-
    dependent fanin (cell ``x`` depends on cells ``0..x`` along the axis)."""

    arity = 1
    entire_array_safe = True

    def __init__(self, axis: int = 0, name: str | None = None):
        super().__init__(name)
        self.axis = int(axis)

    def infer_schema(self, input_schemas) -> ArraySchema:
        schema = input_schemas[0]
        if not 0 <= self.axis < schema.ndim:
            raise OperatorError(f"{self.name}: axis {self.axis} out of range")
        return schema

    def compute(self, inputs: list[SciArray]) -> SciArray:
        return SciArray.from_numpy(
            np.cumsum(inputs[0].values(), axis=self.axis), name=self.name
        )

    def supported_modes(self) -> frozenset[LineageMode]:
        return _MAPPING_MODES

    def map_b_many(self, out_coords: np.ndarray, input_idx: int) -> np.ndarray:
        out_coords = C.as_coord_array(out_coords, ndim=len(self.output_shape))
        if out_coords.shape[0] == 0:
            return out_coords
        pieces = []
        # Group by the off-axis coordinates; each group contributes the
        # prefix line up to its maximal axis coordinate.
        others = np.delete(out_coords, self.axis, axis=1)
        uniq, inverse = np.unique(others, axis=0, return_inverse=True)
        max_axis = np.full(uniq.shape[0], -1, dtype=np.int64)
        np.maximum.at(max_axis, inverse, out_coords[:, self.axis])
        for row, hi in zip(uniq, max_axis):
            line = np.arange(hi + 1, dtype=np.int64).reshape(-1, 1)
            rest = np.repeat(row.reshape(1, -1), hi + 1, axis=0)
            pieces.append(
                np.concatenate([rest[:, : self.axis], line, rest[:, self.axis:]], axis=1)
            )
        return np.concatenate(pieces, axis=0)

    def map_f_many(self, in_coords: np.ndarray, input_idx: int) -> np.ndarray:
        in_coords = C.as_coord_array(in_coords, ndim=len(self.output_shape))
        if in_coords.shape[0] == 0:
            return in_coords
        extent = self.output_shape[self.axis]
        pieces = []
        others = np.delete(in_coords, self.axis, axis=1)
        uniq, inverse = np.unique(others, axis=0, return_inverse=True)
        min_axis = np.full(uniq.shape[0], extent, dtype=np.int64)
        np.minimum.at(min_axis, inverse, in_coords[:, self.axis])
        for row, lo in zip(uniq, min_axis):
            line = np.arange(lo, extent, dtype=np.int64).reshape(-1, 1)
            rest = np.repeat(row.reshape(1, -1), extent - lo, axis=0)
            pieces.append(
                np.concatenate([rest[:, : self.axis], line, rest[:, self.axis:]], axis=1)
            )
        return np.concatenate(pieces, axis=0)

    def map_b_batch(self, out_coords, input_idx):
        out_coords = C.as_coord_array(out_coords, ndim=len(self.output_shape))
        n = out_coords.shape[0]
        counts = out_coords[:, self.axis] + 1  # prefix 0..x inclusive
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        axis_col = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], counts)
        rest = np.repeat(out_coords, counts, axis=0)
        cells = np.concatenate(
            [
                rest[:, : self.axis],
                axis_col.reshape(-1, 1),
                rest[:, self.axis + 1 :],
            ],
            axis=1,
        )
        return cells, counts
