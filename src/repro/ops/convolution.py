"""Convolution built-ins — windowed mapping operators.

A convolution output cell depends on the input cells under the kernel
support centred at its coordinate; that is computable from coordinates and
the kernel shape alone, so convolutions are mapping operators (§V-A.2 lists
convolution among the built-ins with implemented mapping functions).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.arrays import coords as C
from repro.arrays.array import SciArray
from repro.core.modes import LineageMode
from repro.errors import OperatorError
from repro.ops.base import Operator

__all__ = ["Convolve2D", "gaussian_kernel", "dilate_coords"]

_MAPPING_MODES = frozenset({LineageMode.MAP, LineageMode.BLACKBOX})


def gaussian_kernel(size: int = 3, sigma: float = 1.0) -> np.ndarray:
    """Normalised 2-D Gaussian kernel of odd ``size``."""
    if size % 2 != 1 or size < 1:
        raise OperatorError("gaussian kernel size must be odd and positive")
    half = size // 2
    ax = np.arange(-half, half + 1, dtype=np.float64)
    xx, yy = np.meshgrid(ax, ax)
    kernel = np.exp(-(xx**2 + yy**2) / (2.0 * sigma**2))
    return kernel / kernel.sum()


def dilate_coords(
    coords: np.ndarray, offsets: np.ndarray, shape: tuple[int, ...]
) -> np.ndarray:
    """Union of ``coords + offsets`` clipped to ``shape`` and deduplicated.

    The workhorse for windowed mapping functions: each coordinate expands to
    its whole neighbourhood in one vectorised pass.
    """
    coords = C.as_coord_array(coords, ndim=len(shape))
    if coords.shape[0] == 0 or offsets.shape[0] == 0:
        return C.empty_coords(len(shape))
    expanded = (coords[:, None, :] + offsets[None, :, :]).reshape(-1, len(shape))
    expanded = C.clip_coords(expanded, shape)
    return C.unique_coords(expanded, shape)


class Convolve2D(Operator):
    """2-D convolution with constant-zero boundary handling."""

    arity = 1
    entire_array_safe = True

    def __init__(self, kernel: np.ndarray, name: str | None = None):
        super().__init__(name)
        kernel = np.asarray(kernel, dtype=np.float64)
        if kernel.ndim != 2 or any(s % 2 == 0 for s in kernel.shape):
            raise OperatorError("convolution kernels must be 2-D with odd sides")
        self.kernel = kernel
        half = np.asarray(kernel.shape, dtype=np.int64) // 2
        grids = np.meshgrid(
            *(np.arange(-h, h + 1, dtype=np.int64) for h in half), indexing="ij"
        )
        self._offsets = np.stack([g.ravel() for g in grids], axis=1)

    def infer_schema(self, input_schemas):
        if input_schemas[0].ndim != 2:
            raise OperatorError(f"{self.name}: expects a 2-D array")
        return input_schemas[0]

    def compute(self, inputs: list[SciArray]) -> SciArray:
        smoothed = ndimage.convolve(
            inputs[0].values().astype(np.float64), self.kernel, mode="constant"
        )
        return SciArray.from_numpy(smoothed, name=self.name)

    def supported_modes(self) -> frozenset[LineageMode]:
        return _MAPPING_MODES

    def map_b_many(self, out_coords: np.ndarray, input_idx: int) -> np.ndarray:
        return dilate_coords(out_coords, self._offsets, self.input_shapes[0])

    def map_f_many(self, in_coords: np.ndarray, input_idx: int) -> np.ndarray:
        # Forward lineage mirrors the kernel support (offsets are symmetric
        # around zero by construction, so the same offset set applies).
        return dilate_coords(in_coords, self._offsets, self.output_shape)

    def map_b_batch(self, out_coords, input_idx):
        shape = self.input_shapes[0]
        out_coords = C.as_coord_array(out_coords, ndim=len(shape))
        n = out_coords.shape[0]
        if n == 0:
            return C.empty_coords(len(shape)), np.zeros(0, dtype=np.int64)
        # per-row neighbourhood with a validity mask instead of a union:
        # offsets are pairwise distinct, so each row's kept cells are unique
        expanded = out_coords[:, None, :] + self._offsets[None, :, :]
        extents = np.asarray(shape, dtype=np.int64)
        inside = ((expanded >= 0) & (expanded < extents)).all(axis=2)
        return expanded[inside], inside.sum(axis=1, dtype=np.int64)

    def runtime_cost_hint(self) -> float:
        return 2.0 + self.kernel.size / 9.0
