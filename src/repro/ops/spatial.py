"""Spatial rearrangement built-ins: shift, flip, rotate, rolling windows.

All mapping operators — common in the image-processing pipelines the
astronomy use case describes (alignment shifts before compositing, rolling
background estimates).  ``WindowReduce`` generalises the windowed-lineage
pattern beyond convolution: the output cell depends on the full window even
though the computation is an aggregate, not a stencil product.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy import ndimage

from repro.arrays import coords as C
from repro.arrays.array import SciArray
from repro.core.modes import LineageMode
from repro.errors import OperatorError
from repro.ops.base import Operator
from repro.ops.convolution import dilate_coords

__all__ = ["Shift", "Flip", "Rotate90", "WindowReduce"]

_MAPPING_MODES = frozenset({LineageMode.MAP, LineageMode.BLACKBOX})


class Shift(Operator):
    """Translate the array by an integer offset; vacated cells become zero.

    ``out[c] = in[c - offset]`` where defined — the alignment step of a
    coadd pipeline.
    """

    arity = 1
    entire_array_safe = False  # vacated / dropped border cells

    def __init__(self, offset, name: str | None = None):
        super().__init__(name)
        self.offset = np.asarray(offset, dtype=np.int64)

    def infer_schema(self, input_schemas):
        schema = input_schemas[0]
        if schema.ndim != self.offset.size:
            raise OperatorError(f"{self.name}: offset rank != input rank")
        if (np.abs(self.offset) >= np.asarray(schema.shape)).any():
            raise OperatorError(f"{self.name}: offset larger than the array")
        return schema

    def compute(self, inputs: list[SciArray]) -> SciArray:
        values = inputs[0].values()
        out = np.zeros_like(values)
        src = tuple(
            slice(max(0, -o), values.shape[d] - max(0, o))
            for d, o in enumerate(self.offset)
        )
        dst = tuple(
            slice(max(0, o), values.shape[d] + min(0, o))
            for d, o in enumerate(self.offset)
        )
        out[dst] = values[src]
        return SciArray.from_numpy(out, name=self.name)

    def supported_modes(self):
        return _MAPPING_MODES

    def map_b_many(self, out_coords, input_idx):
        shifted = C.as_coord_array(out_coords, ndim=self.offset.size) - self.offset
        return C.clip_coords(shifted, self.input_shapes[0])

    def map_f_many(self, in_coords, input_idx):
        shifted = C.as_coord_array(in_coords, ndim=self.offset.size) + self.offset
        return C.clip_coords(shifted, self.output_shape)


class Flip(Operator):
    """Reverse the array along one axis (``out[..., i, ...] = in[..., n-1-i, ...]``)."""

    arity = 1
    entire_array_safe = True

    def __init__(self, axis: int = 0, name: str | None = None):
        super().__init__(name)
        self.axis = int(axis)

    def infer_schema(self, input_schemas):
        schema = input_schemas[0]
        if not 0 <= self.axis < schema.ndim:
            raise OperatorError(f"{self.name}: axis {self.axis} out of range")
        return schema

    def compute(self, inputs: list[SciArray]) -> SciArray:
        return SciArray.from_numpy(
            np.flip(inputs[0].values(), axis=self.axis).copy(), name=self.name
        )

    def supported_modes(self):
        return _MAPPING_MODES

    def _mirror(self, coords: np.ndarray) -> np.ndarray:
        coords = C.as_coord_array(coords, ndim=len(self.output_shape))
        out = coords.copy()
        out[:, self.axis] = self.output_shape[self.axis] - 1 - out[:, self.axis]
        return out

    def map_b_many(self, out_coords, input_idx):
        return self._mirror(out_coords)

    def map_f_many(self, in_coords, input_idx):
        return self._mirror(in_coords)


class Rotate90(Operator):
    """Rotate a 2-D array 90° counter-clockwise (numpy ``rot90`` semantics)."""

    arity = 1
    entire_array_safe = True

    def infer_schema(self, input_schemas):
        schema = input_schemas[0]
        if schema.ndim != 2:
            raise OperatorError(f"{self.name}: rot90 expects a 2-D array")
        return schema.with_shape(schema.shape[::-1])

    def compute(self, inputs: list[SciArray]) -> SciArray:
        return SciArray.from_numpy(np.rot90(inputs[0].values()).copy(), name=self.name)

    def supported_modes(self):
        return _MAPPING_MODES

    def map_b_many(self, out_coords, input_idx):
        # out[r, c] = in[c, W_out - 1 - r] where W_out = in rows... derive:
        # np.rot90: out[i, j] = in[j, n_cols_in - 1 - i]
        out_coords = C.as_coord_array(out_coords, ndim=2)
        n_cols_in = self.input_shapes[0][1]
        rows = out_coords[:, 1]
        cols = n_cols_in - 1 - out_coords[:, 0]
        return np.stack([rows, cols], axis=1)

    def map_f_many(self, in_coords, input_idx):
        in_coords = C.as_coord_array(in_coords, ndim=2)
        n_cols_in = self.input_shapes[0][1]
        i = n_cols_in - 1 - in_coords[:, 1]
        j = in_coords[:, 0]
        return np.stack([i, j], axis=1)


class WindowReduce(Operator):
    """Rolling aggregate over a rectangular window (e.g. local median/max).

    A windowed mapping operator like convolution, but the computation is an
    order statistic — the lineage pattern is identical (the full window),
    which is exactly why mapping functions are declared per *structure*,
    not per arithmetic.
    """

    arity = 1
    entire_array_safe = True

    _FILTERS: dict[str, Callable] = {
        "mean": lambda v, size: ndimage.uniform_filter(v, size=size, mode="nearest"),
        "median": lambda v, size: ndimage.median_filter(v, size=size, mode="nearest"),
        "max": lambda v, size: ndimage.maximum_filter(v, size=size, mode="nearest"),
        "min": lambda v, size: ndimage.minimum_filter(v, size=size, mode="nearest"),
    }

    def __init__(self, size: int = 3, stat: str = "mean", name: str | None = None):
        super().__init__(name)
        if size % 2 != 1 or size < 1:
            raise OperatorError("window size must be odd and positive")
        if stat not in self._FILTERS:
            raise OperatorError(
                f"unknown stat {stat!r}; pick one of {sorted(self._FILTERS)}"
            )
        self.size = int(size)
        self.stat = stat
        half = size // 2
        grid = np.meshgrid(
            np.arange(-half, half + 1), np.arange(-half, half + 1), indexing="ij"
        )
        self._offsets = np.stack([g.ravel() for g in grid], axis=1).astype(np.int64)

    def infer_schema(self, input_schemas):
        if input_schemas[0].ndim != 2:
            raise OperatorError(f"{self.name}: expects a 2-D array")
        return input_schemas[0]

    def compute(self, inputs: list[SciArray]) -> SciArray:
        values = self._FILTERS[self.stat](
            inputs[0].values().astype(np.float64), self.size
        )
        return SciArray.from_numpy(values, name=self.name)

    def supported_modes(self):
        return _MAPPING_MODES

    def map_b_many(self, out_coords, input_idx):
        return dilate_coords(out_coords, self._offsets, self.input_shapes[0])

    def map_f_many(self, in_coords, input_idx):
        return dilate_coords(in_coords, self._offsets, self.output_shape)

    def runtime_cost_hint(self) -> float:
        return 3.0 + self.size
