"""Shape-manipulating built-ins: slice, concat, subsample, reshape, pad.

All are mapping operators.  ``Concat`` is the paper's counterexample for the
entire-array optimization (§VI-C): the forward lineage of one whole input is
only a *subset* of the output, so only its backward direction is annotated
safe (each class carries the direction-specific flags).
"""

from __future__ import annotations

import numpy as np

from repro.arrays import coords as C
from repro.arrays.array import SciArray
from repro.arrays.schema import ArraySchema
from repro.core.modes import LineageMode
from repro.errors import OperatorError
from repro.ops.base import Operator

__all__ = ["SliceOp", "Concat", "Subsample", "Reshape", "Pad"]

_MAPPING_MODES = frozenset({LineageMode.MAP, LineageMode.BLACKBOX})


class SliceOp(Operator):
    """Extract the inclusive-exclusive box ``[lo, hi)`` from the input."""

    arity = 1
    # Forward lineage of the whole input is the whole output; backward
    # lineage of the whole output is only the sliced box, so the shortcut
    # is one-directional.
    entire_array_safe_forward = True

    def __init__(self, lo, hi, name: str | None = None):
        super().__init__(name)
        self.lo = np.asarray(lo, dtype=np.int64)
        self.hi = np.asarray(hi, dtype=np.int64)
        if self.lo.shape != self.hi.shape or (self.hi <= self.lo).any():
            raise OperatorError("slice bounds must satisfy lo < hi per dimension")

    def infer_schema(self, input_schemas) -> ArraySchema:
        schema = input_schemas[0]
        if schema.ndim != self.lo.size:
            raise OperatorError(f"{self.name}: bounds rank != input rank")
        if (self.hi > np.asarray(schema.shape)).any() or (self.lo < 0).any():
            raise OperatorError(f"{self.name}: slice {self.lo}:{self.hi} out of bounds")
        return schema.with_shape(tuple((self.hi - self.lo).tolist()))

    def compute(self, inputs: list[SciArray]) -> SciArray:
        slices = tuple(slice(int(a), int(b)) for a, b in zip(self.lo, self.hi))
        return SciArray.from_numpy(inputs[0].values()[slices].copy(), name=self.name)

    def supported_modes(self) -> frozenset[LineageMode]:
        return _MAPPING_MODES

    def map_b_many(self, out_coords: np.ndarray, input_idx: int) -> np.ndarray:
        return C.as_coord_array(out_coords, ndim=self.lo.size) + self.lo

    def map_f_many(self, in_coords: np.ndarray, input_idx: int) -> np.ndarray:
        shifted = C.as_coord_array(in_coords, ndim=self.lo.size) - self.lo
        return C.clip_coords(shifted, self.output_shape)

    def map_b_batch(self, out_coords, input_idx):
        out_coords = C.as_coord_array(out_coords, ndim=self.lo.size)
        return out_coords + self.lo, np.ones(out_coords.shape[0], dtype=np.int64)


class Concat(Operator):
    """Concatenate ``arity`` same-rank arrays along ``axis``."""

    # §VI-C's counterexample: one input's forward lineage is an output
    # subset, so only the backward direction may short-circuit.
    entire_array_safe_backward = True

    def __init__(self, axis: int = 0, arity: int = 2, name: str | None = None):
        super().__init__(name)
        if arity < 2:
            raise OperatorError("concat needs at least two inputs")
        self.arity = int(arity)
        self.axis = int(axis)
        self._offsets: list[int] | None = None

    def infer_schema(self, input_schemas) -> ArraySchema:
        first = input_schemas[0]
        if not 0 <= self.axis < first.ndim:
            raise OperatorError(f"{self.name}: axis {self.axis} out of range")
        total = 0
        self._offsets = []
        for schema in input_schemas:
            other = list(schema.shape)
            ref = list(first.shape)
            other[self.axis] = ref[self.axis] = 0
            if other != ref:
                raise OperatorError(f"{self.name}: non-axis extents differ")
            self._offsets.append(total)
            total += schema.shape[self.axis]
        out_shape = list(first.shape)
        out_shape[self.axis] = total
        return first.with_shape(tuple(out_shape))

    def compute(self, inputs: list[SciArray]) -> SciArray:
        stacked = np.concatenate([a.values() for a in inputs], axis=self.axis)
        return SciArray.from_numpy(stacked, name=self.name)

    def supported_modes(self) -> frozenset[LineageMode]:
        return _MAPPING_MODES

    def map_b_many(self, out_coords: np.ndarray, input_idx: int) -> np.ndarray:
        out_coords = C.as_coord_array(out_coords, ndim=len(self.output_shape))
        shifted = out_coords.copy()
        shifted[:, self.axis] -= self._offsets[input_idx]
        return C.clip_coords(shifted, self.input_shapes[input_idx])

    def map_f_many(self, in_coords: np.ndarray, input_idx: int) -> np.ndarray:
        in_coords = C.as_coord_array(in_coords, ndim=len(self.input_shapes[input_idx]))
        shifted = in_coords.copy()
        shifted[:, self.axis] += self._offsets[input_idx]
        return shifted

    def map_b_batch(self, out_coords, input_idx):
        out_coords = C.as_coord_array(out_coords, ndim=len(self.output_shape))
        shifted = out_coords.copy()
        shifted[:, self.axis] -= self._offsets[input_idx]
        shape = np.asarray(self.input_shapes[input_idx], dtype=np.int64)
        inside = ((shifted >= 0) & (shifted < shape)).all(axis=1)
        return shifted[inside], inside.astype(np.int64)


class Subsample(Operator):
    """Keep every ``step``-th cell along each dimension."""

    arity = 1
    entire_array_safe_forward = True  # every output cell has a source cell

    def __init__(self, steps, name: str | None = None):
        super().__init__(name)
        self.steps = np.asarray(steps, dtype=np.int64)
        if (self.steps < 1).any():
            raise OperatorError("subsample steps must be >= 1")

    def infer_schema(self, input_schemas) -> ArraySchema:
        schema = input_schemas[0]
        if schema.ndim != self.steps.size:
            raise OperatorError(f"{self.name}: steps rank != input rank")
        out = tuple(
            int(-(-extent // step)) for extent, step in zip(schema.shape, self.steps)
        )
        return schema.with_shape(out)

    def compute(self, inputs: list[SciArray]) -> SciArray:
        slices = tuple(slice(None, None, int(s)) for s in self.steps)
        return SciArray.from_numpy(inputs[0].values()[slices].copy(), name=self.name)

    def supported_modes(self) -> frozenset[LineageMode]:
        return _MAPPING_MODES

    def map_b_many(self, out_coords: np.ndarray, input_idx: int) -> np.ndarray:
        return C.as_coord_array(out_coords, ndim=self.steps.size) * self.steps

    def map_f_many(self, in_coords: np.ndarray, input_idx: int) -> np.ndarray:
        in_coords = C.as_coord_array(in_coords, ndim=self.steps.size)
        keep = (in_coords % self.steps == 0).all(axis=1)
        return in_coords[keep] // self.steps

    def map_b_batch(self, out_coords, input_idx):
        out_coords = C.as_coord_array(out_coords, ndim=self.steps.size)
        return out_coords * self.steps, np.ones(out_coords.shape[0], dtype=np.int64)


class Reshape(Operator):
    """Row-major reshape; lineage follows ravel order."""

    arity = 1
    entire_array_safe = True

    def __init__(self, shape, name: str | None = None):
        super().__init__(name)
        self.target_shape = tuple(int(s) for s in shape)

    def infer_schema(self, input_schemas) -> ArraySchema:
        schema = input_schemas[0]
        if int(np.prod(self.target_shape)) != schema.size:
            raise OperatorError(
                f"{self.name}: cannot reshape {schema.shape} to {self.target_shape}"
            )
        return schema.with_shape(self.target_shape)

    def compute(self, inputs: list[SciArray]) -> SciArray:
        return SciArray.from_numpy(
            inputs[0].values().reshape(self.target_shape).copy(), name=self.name
        )

    def supported_modes(self) -> frozenset[LineageMode]:
        return _MAPPING_MODES

    def map_b_many(self, out_coords: np.ndarray, input_idx: int) -> np.ndarray:
        packed = C.pack_coords(out_coords, self.output_shape)
        return C.unpack_coords(packed, self.input_shapes[0])

    def map_f_many(self, in_coords: np.ndarray, input_idx: int) -> np.ndarray:
        packed = C.pack_coords(in_coords, self.input_shapes[0])
        return C.unpack_coords(packed, self.output_shape)

    def map_b_batch(self, out_coords, input_idx):
        cells = self.map_b_many(out_coords, input_idx)
        return cells, np.ones(cells.shape[0], dtype=np.int64)


class Pad(Operator):
    """Zero-pad ``before`` and ``after`` cells along each dimension."""

    arity = 1
    entire_array_safe_backward = True  # border cells merely add nothing

    def __init__(self, before, after, name: str | None = None):
        super().__init__(name)
        self.before = np.asarray(before, dtype=np.int64)
        self.after = np.asarray(after, dtype=np.int64)
        if (self.before < 0).any() or (self.after < 0).any():
            raise OperatorError("pad widths must be non-negative")

    def infer_schema(self, input_schemas) -> ArraySchema:
        schema = input_schemas[0]
        if schema.ndim != self.before.size:
            raise OperatorError(f"{self.name}: pad rank != input rank")
        out = tuple(
            int(s + b + a) for s, b, a in zip(schema.shape, self.before, self.after)
        )
        return schema.with_shape(out)

    def compute(self, inputs: list[SciArray]) -> SciArray:
        widths = [(int(b), int(a)) for b, a in zip(self.before, self.after)]
        return SciArray.from_numpy(np.pad(inputs[0].values(), widths), name=self.name)

    def supported_modes(self) -> frozenset[LineageMode]:
        return _MAPPING_MODES

    def map_b_many(self, out_coords: np.ndarray, input_idx: int) -> np.ndarray:
        shifted = C.as_coord_array(out_coords, ndim=self.before.size) - self.before
        return C.clip_coords(shifted, self.input_shapes[0])

    def map_f_many(self, in_coords: np.ndarray, input_idx: int) -> np.ndarray:
        return C.as_coord_array(in_coords, ndim=self.before.size) + self.before

    def map_b_batch(self, out_coords, input_idx):
        shifted = C.as_coord_array(out_coords, ndim=self.before.size) - self.before
        shape = np.asarray(self.input_shapes[0], dtype=np.int64)
        inside = ((shifted >= 0) & (shifted < shape)).all(axis=1)
        return shifted[inside], inside.astype(np.int64)
