"""Join-style built-ins.

SciDB's ``join`` aligns two same-shape arrays cell-by-cell into one array
whose cells carry both attributes; the paper lists it among the built-in
mapping operators.  ``CrossProduct`` is the degenerate high-fanout cousin
used in tests.
"""

from __future__ import annotations

import numpy as np

from repro.arrays import coords as C
from repro.arrays.array import SciArray
from repro.arrays.schema import ArraySchema, Attribute
from repro.core.modes import LineageMode
from repro.errors import OperatorError
from repro.ops.base import Operator

__all__ = ["AttributeJoin", "CrossProduct"]

_MAPPING_MODES = frozenset({LineageMode.MAP, LineageMode.BLACKBOX})


class AttributeJoin(Operator):
    """Cell-wise join: output cells hold one attribute from each input."""

    arity = 2
    entire_array_safe = True

    def infer_schema(self, input_schemas) -> ArraySchema:
        a, b = input_schemas
        a.require_same_shape(b, context=self.name)
        attrs = (
            Attribute("left", a.default_attr.dtype),
            Attribute("right", b.default_attr.dtype),
        )
        return ArraySchema(dims=a.dims, attrs=attrs, name=self.name)

    def compute(self, inputs: list[SciArray]) -> SciArray:
        schema = self.output_schema or self.infer_schema(
            tuple(a.schema for a in inputs)
        )
        return SciArray(
            schema,
            {"left": inputs[0].values().copy(), "right": inputs[1].values().copy()},
        )

    def supported_modes(self) -> frozenset[LineageMode]:
        return _MAPPING_MODES

    def map_b_many(self, out_coords: np.ndarray, input_idx: int) -> np.ndarray:
        return C.as_coord_array(out_coords, ndim=len(self.output_shape))

    def map_f_many(self, in_coords: np.ndarray, input_idx: int) -> np.ndarray:
        return C.as_coord_array(in_coords, ndim=len(self.input_shapes[input_idx]))


class CrossProduct(Operator):
    """Outer product of two vectors: ``out[i, j] = a[i] * b[j]``."""

    arity = 2
    entire_array_safe = True

    def infer_schema(self, input_schemas) -> ArraySchema:
        a, b = input_schemas
        if a.ndim != 1 or b.ndim != 1:
            raise OperatorError(f"{self.name}: expects two 1-D arrays")
        return a.with_shape((a.shape[0], b.shape[0]))

    def compute(self, inputs: list[SciArray]) -> SciArray:
        return SciArray.from_numpy(
            np.outer(inputs[0].values(), inputs[1].values()), name=self.name
        )

    def supported_modes(self) -> frozenset[LineageMode]:
        return _MAPPING_MODES

    def map_b_many(self, out_coords: np.ndarray, input_idx: int) -> np.ndarray:
        out_coords = C.as_coord_array(out_coords, ndim=2)
        col = 0 if input_idx == 0 else 1
        return np.unique(out_coords[:, col]).reshape(-1, 1)

    def map_f_many(self, in_coords: np.ndarray, input_idx: int) -> np.ndarray:
        in_coords = C.as_coord_array(in_coords, ndim=1)
        if in_coords.shape[0] == 0:
            return C.empty_coords(2)
        other = self.input_shapes[1 - input_idx][0]
        idx = np.unique(in_coords[:, 0])
        rng = np.arange(other, dtype=np.int64)
        if input_idx == 0:
            return np.stack(
                [np.repeat(idx, other), np.tile(rng, idx.size)], axis=1
            )
        return np.stack([np.tile(rng, idx.size), np.repeat(idx, other)], axis=1)
