"""Linear-algebra built-ins: transpose, matrix multiply, inverse.

Matrix multiply is the paper's running example of both a mapping operator
(backward lineage of an output cell is the corresponding row and column,
§IV) and a safe target for the entire-array optimization (§VI-C).  Matrix
inverse is the canonical all-to-all operator.
"""

from __future__ import annotations

import numpy as np

from repro.arrays import coords as C
from repro.arrays.array import SciArray
from repro.arrays.schema import ArraySchema
from repro.core.modes import LineageMode
from repro.errors import OperatorError
from repro.ops.base import Operator

__all__ = ["Transpose", "MatMul", "MatrixInverse"]

_MAPPING_MODES = frozenset({LineageMode.MAP, LineageMode.BLACKBOX})


class Transpose(Operator):
    """2-D transpose; ``map_b((x, y)) = [(y, x)]`` exactly as §V-A.2."""

    arity = 1
    entire_array_safe = True

    def infer_schema(self, input_schemas) -> ArraySchema:
        schema = input_schemas[0]
        if schema.ndim != 2:
            raise OperatorError(f"{self.name}: transpose expects a 2-D array")
        return schema.with_shape(schema.shape[::-1])

    def compute(self, inputs: list[SciArray]) -> SciArray:
        return SciArray.from_numpy(inputs[0].values().T.copy(), name=self.name)

    def supported_modes(self) -> frozenset[LineageMode]:
        return _MAPPING_MODES

    def map_b_many(self, out_coords: np.ndarray, input_idx: int) -> np.ndarray:
        return C.as_coord_array(out_coords, ndim=2)[:, ::-1]

    def map_f_many(self, in_coords: np.ndarray, input_idx: int) -> np.ndarray:
        return C.as_coord_array(in_coords, ndim=2)[:, ::-1]


class MatMul(Operator):
    """``(m, k) @ (k, n) -> (m, n)`` with row/column mapping functions."""

    arity = 2
    entire_array_safe = True

    def infer_schema(self, input_schemas) -> ArraySchema:
        a, b = input_schemas
        if a.ndim != 2 or b.ndim != 2:
            raise OperatorError(f"{self.name}: matmul expects two 2-D arrays")
        if a.shape[1] != b.shape[0]:
            raise OperatorError(
                f"{self.name}: inner dimensions differ ({a.shape} @ {b.shape})"
            )
        return a.with_shape((a.shape[0], b.shape[1]))

    def compute(self, inputs: list[SciArray]) -> SciArray:
        return SciArray.from_numpy(
            inputs[0].values() @ inputs[1].values(), name=self.name
        )

    def supported_modes(self) -> frozenset[LineageMode]:
        return _MAPPING_MODES

    def map_b_many(self, out_coords: np.ndarray, input_idx: int) -> np.ndarray:
        out_coords = C.as_coord_array(out_coords, ndim=2)
        k = self.input_shapes[0][1]
        if out_coords.shape[0] == 0:
            return C.empty_coords(2)
        if input_idx == 0:
            rows = np.unique(out_coords[:, 0])
            return _cross(rows, np.arange(k, dtype=np.int64))
        cols = np.unique(out_coords[:, 1])
        return _cross(np.arange(k, dtype=np.int64), cols)

    def map_f_many(self, in_coords: np.ndarray, input_idx: int) -> np.ndarray:
        in_coords = C.as_coord_array(in_coords, ndim=2)
        m, n = self.output_shape
        if in_coords.shape[0] == 0:
            return C.empty_coords(2)
        if input_idx == 0:
            rows = np.unique(in_coords[:, 0])
            return _cross(rows, np.arange(n, dtype=np.int64))
        cols = np.unique(in_coords[:, 1])
        return _cross(np.arange(m, dtype=np.int64), cols)


class MatrixInverse(Operator):
    """Square-matrix inverse — every output depends on every input."""

    arity = 1
    all_to_all = True
    entire_array_safe = True

    def infer_schema(self, input_schemas) -> ArraySchema:
        schema = input_schemas[0]
        if schema.ndim != 2 or schema.shape[0] != schema.shape[1]:
            raise OperatorError(f"{self.name}: inverse expects a square 2-D array")
        return schema

    def compute(self, inputs: list[SciArray]) -> SciArray:
        values = inputs[0].values().astype(np.float64)
        # Regularise so synthetic benchmark matrices are always invertible.
        eye = np.eye(values.shape[0]) * 1e-9
        return SciArray.from_numpy(np.linalg.inv(values + eye), name=self.name)

    def supported_modes(self) -> frozenset[LineageMode]:
        return _MAPPING_MODES

    def runtime_cost_hint(self) -> float:
        return 10.0


def _cross(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Cartesian product of row and column indices as (n, 2) coords."""
    r = np.repeat(rows, cols.size)
    c = np.tile(cols, rows.size)
    return np.stack([r, c], axis=1).astype(np.int64)
