"""Operator library: the SciDB-style built-ins plus the UDF base classes."""

from repro.ops.aggregates import (
    CumulativeSum,
    GlobalMean,
    GlobalReduce,
    Reduce,
    Standardize,
)
from repro.ops.base import LineageContext, Operator
from repro.ops.convolution import Convolve2D, dilate_coords, gaussian_kernel
from repro.ops.elementwise import (
    AbsoluteValue,
    Add,
    AddConstant,
    BinaryElementwise,
    BroadcastCombine,
    BroadcastDivide,
    BroadcastSubtract,
    Clip,
    ClipMin,
    Divide,
    DivideConstant,
    LogTransform,
    Maximum,
    Minimum,
    Multiply,
    PixelMean,
    Scale,
    SquareRoot,
    Subtract,
    SubtractConstant,
    Threshold,
    UnaryElementwise,
)
from repro.ops.join import AttributeJoin, CrossProduct
from repro.ops.linalg import MatMul, MatrixInverse, Transpose
from repro.ops.spatial import Flip, Rotate90, Shift, WindowReduce
from repro.ops.reshape import Concat, Pad, Reshape, SliceOp, Subsample

__all__ = [
    "Operator",
    "LineageContext",
    # elementwise
    "UnaryElementwise",
    "BinaryElementwise",
    "BroadcastCombine",
    "Scale",
    "AddConstant",
    "SubtractConstant",
    "DivideConstant",
    "ClipMin",
    "Clip",
    "AbsoluteValue",
    "SquareRoot",
    "LogTransform",
    "Threshold",
    "Add",
    "Subtract",
    "Multiply",
    "Divide",
    "Minimum",
    "Maximum",
    "PixelMean",
    "BroadcastSubtract",
    "BroadcastDivide",
    # linalg
    "Transpose",
    "MatMul",
    "MatrixInverse",
    # convolution
    "Convolve2D",
    "gaussian_kernel",
    "dilate_coords",
    # spatial
    "Shift",
    "Flip",
    "Rotate90",
    "WindowReduce",
    # reshape
    "SliceOp",
    "Concat",
    "Subsample",
    "Reshape",
    "Pad",
    # aggregates
    "Reduce",
    "GlobalReduce",
    "GlobalMean",
    "Standardize",
    "CumulativeSum",
    # join
    "AttributeJoin",
    "CrossProduct",
]
