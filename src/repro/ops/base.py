"""Operator base class and the lineage API of Table I.

An operator consumes ``n`` input arrays and produces one output array (§IV).
Subclasses implement :meth:`Operator.compute` for the data transformation
and, depending on the lineage modes they support:

* ``MAP`` — override :meth:`map_b_many` / :meth:`map_f_many` (vectorised
  counterparts of the paper's ``map_b(outcell, i)`` / ``map_f(incell, i)``;
  they return the *union* of the per-cell lineage, which is all the query
  executor's boolean frontier needs);
* ``FULL`` — override :meth:`write_lineage` and call ``ctx.lwrite(...)``;
* ``PAY``/``COMP`` — also override :meth:`map_p_many` (the paper's
  ``map_p(outcell, payload, i)``) and emit payload pairs from
  :meth:`write_lineage` via ``ctx.lwrite_payload``.

``supported_modes()`` declares what the optimizer may pick (operators that
don't override it are treated as all-to-all black boxes, exactly as §IV
prescribes for un-instrumented UDFs).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.arrays import coords as C
from repro.arrays.array import SciArray
from repro.arrays.schema import ArraySchema
from repro.core.model import (
    BufferSink,
    ElementwiseBatch,
    LineageSink,
    PayloadBatch,
    RegionBatch,
    RegionPair,
)
from repro.core.modes import LineageMode
from repro.errors import LineageError, OperatorError

__all__ = ["LineageContext", "Operator"]


class LineageContext:
    """Handed to :meth:`Operator.run`; carries ``cur_modes`` and the sink
    behind the ``lwrite`` API calls."""

    def __init__(
        self,
        cur_modes: frozenset[LineageMode],
        sink: LineageSink | None = None,
        node: str | None = None,
    ):
        self.cur_modes = frozenset(cur_modes)
        self.sink = sink if sink is not None else BufferSink()
        self.node = node

    # -- mode queries ----------------------------------------------------------

    @property
    def wants_full(self) -> bool:
        return LineageMode.FULL in self.cur_modes

    @property
    def wants_payload(self) -> bool:
        return bool(
            self.cur_modes & {LineageMode.PAY, LineageMode.COMP}
        )

    @property
    def wants_pairs(self) -> bool:
        """True when the operator should execute its lineage-recording code."""
        return self.wants_full or self.wants_payload

    # -- the lwrite API (Table I) ---------------------------------------------

    def lwrite(self, outcells, *incells) -> None:
        """Record one region pair: ``outcells`` depend on every ``incells[i]``."""
        if not incells:
            raise LineageError("lwrite needs input cells (or use lwrite_payload)")
        pair = RegionPair(
            outcells=C.as_coord_array(outcells),
            incells=tuple(C.as_coord_array(cells) for cells in incells),
        )
        self.sink.add_pair(pair)

    def lwrite_payload(self, outcells, payload: bytes) -> None:
        """Record one payload pair (``lwrite(outcells, payload)`` in Table I)."""
        if type(payload) is not bytes:  # zero-copy when already immutable
            payload = bytes(payload)
        self.sink.add_pair(
            RegionPair(outcells=C.as_coord_array(outcells), payload=payload)
        )

    def lwrite_elementwise(self, outcells, *incells) -> None:
        """Bulk form: row ``i`` is its own one-to-one region pair."""
        self.sink.add_elementwise(
            ElementwiseBatch(
                outcells=C.as_coord_array(outcells),
                incells=tuple(C.as_coord_array(cells) for cells in incells),
            )
        )

    def lwrite_payload_batch(self, outcells, payloads) -> None:
        """Bulk form: output cell ``i`` carries ``payloads[i]``."""
        self.sink.add_payload_batch(
            PayloadBatch(outcells=C.as_coord_array(outcells), payloads=payloads)
        )

    def lwrite_batch(self, out_coords, out_offsets, in_coords, in_offsets) -> None:
        """Columnar bulk form: ``n`` full region pairs in one call.

        Pair ``i`` spans ``out_coords[out_offsets[i]:out_offsets[i+1]]`` and,
        per input ``k``, ``in_coords[k][in_offsets[k][i]:in_offsets[k][i+1]]``.
        This is the zero-object capture path: built-in operators emit their
        whole lineage as one descriptor and the stores lower it lazily.
        """
        self.sink.add_region_batch(
            RegionBatch(
                out_coords=C.as_coord_array(out_coords),
                out_offsets=np.asarray(out_offsets, dtype=np.int64),
                in_coords=tuple(C.as_coord_array(cells) for cells in in_coords),
                in_offsets=tuple(
                    np.asarray(off, dtype=np.int64) for off in in_offsets
                ),
            )
        )

    def lwrite_payload_regions(
        self, out_coords, out_offsets, payloads: bytes, payload_offsets
    ) -> None:
        """Columnar bulk form for payload pairs with multi-cell out regions.

        Pair ``i`` spans ``out_coords[out_offsets[i]:out_offsets[i+1]]`` and
        carries ``payloads[payload_offsets[i]:payload_offsets[i+1]]``.
        """
        if type(payloads) is not bytes:
            payloads = bytes(payloads)
        self.sink.add_region_batch(
            RegionBatch(
                out_coords=C.as_coord_array(out_coords),
                out_offsets=np.asarray(out_offsets, dtype=np.int64),
                payloads=payloads,
                payload_offsets=np.asarray(payload_offsets, dtype=np.int64),
            )
        )


class Operator:
    """Base class for every workflow operator (built-in or UDF)."""

    #: number of input arrays; subclasses may override or set at init
    arity: int = 1
    #: every output cell depends on every input cell (e.g. global mean)
    all_to_all: bool = False
    #: manual annotations for the entire-array optimization (§VI-C).
    #: ``entire_array_safe`` asserts both directions at once; the split
    #: flags handle operators that are safe one way only — concat's forward
    #: lineage of one whole input is a *subset* of the output (the paper's
    #: counterexample), while its backward lineage of the whole output is
    #: each whole input.
    entire_array_safe: bool = False
    entire_array_safe_backward: bool = False
    entire_array_safe_forward: bool = False

    def entire_array_ok(self, backward: bool) -> bool:
        """May a full query frontier short-circuit this operator?"""
        if self.entire_array_safe:
            return True
        return self.entire_array_safe_backward if backward else self.entire_array_safe_forward

    def __init__(self, name: str | None = None):
        self.name = name or type(self).__name__
        self.input_schemas: tuple[ArraySchema, ...] | None = None
        self.output_schema: ArraySchema | None = None

    # -- binding -----------------------------------------------------------

    def bind(self, input_schemas: Sequence[ArraySchema]) -> ArraySchema:
        """Validate input schemas and derive the output schema.

        Mapping functions may rely on ``self.input_shapes`` and
        ``self.output_shape`` afterwards (the paper's mapping operators
        compute lineage from coordinates and array metadata only).
        """
        input_schemas = tuple(input_schemas)
        if len(input_schemas) != self.arity:
            raise OperatorError(
                f"{self.name}: expected {self.arity} inputs, got {len(input_schemas)}"
            )
        self.input_schemas = input_schemas
        self.output_schema = self.infer_schema(input_schemas).with_name(self.name)
        return self.output_schema

    def infer_schema(self, input_schemas: tuple[ArraySchema, ...]) -> ArraySchema:
        """Default: output mirrors the first input."""
        return input_schemas[0]

    @property
    def input_shapes(self) -> tuple[tuple[int, ...], ...]:
        self._require_bound()
        return tuple(s.shape for s in self.input_schemas)

    @property
    def output_shape(self) -> tuple[int, ...]:
        self._require_bound()
        return self.output_schema.shape

    def _require_bound(self) -> None:
        if self.input_schemas is None or self.output_schema is None:
            raise OperatorError(f"{self.name} has not been bound to input schemas")

    # -- execution ------------------------------------------------------------

    def run(self, inputs: Sequence[SciArray], ctx: LineageContext) -> SciArray:
        """Execute the operator, emitting lineage for ``ctx.cur_modes``.

        The default split keeps pure computation (:meth:`compute`) separate
        from lineage recording (:meth:`write_lineage`); operators may
        instead override ``run`` wholesale, as the paper's pseudocode does.
        """
        output = self.compute(list(inputs))
        if ctx.wants_pairs:
            self.write_lineage(list(inputs), output, ctx)
        return output

    def compute(self, inputs: list[SciArray]) -> SciArray:
        raise NotImplementedError(f"{self.name} does not implement compute()")

    def write_lineage(
        self, inputs: list[SciArray], output: SciArray, ctx: LineageContext
    ) -> None:
        """Emit region pairs via ``ctx.lwrite*``.

        The default covers three cases so built-ins need no extra code when a
        tracing re-execution asks for ``FULL`` (§V-B): all-to-all operators
        emit one exact pair (checked *before* the mapping path — a global
        aggregate supporting ``MAP`` would otherwise expand the identical
        all-to-all relation once per output cell); mapping operators derive
        exact per-cell pairs from one :meth:`map_b_batch` pass; anything else
        degrades to a single all-to-all pair.
        """
        if not self.all_to_all and LineageMode.MAP in self.supported_modes():
            self._trace_full_from_map(output, ctx)
            return
        outcells = C.all_coords(output.shape)
        incells = [C.all_coords(arr.shape) for arr in inputs]
        ctx.lwrite(outcells, *incells)

    def _trace_full_from_map(self, output: SciArray, ctx: LineageContext) -> None:
        """One batch pass: each output cell becomes its own region pair."""
        outcells = C.all_coords(output.shape)
        results = [self.map_b_batch(outcells, i) for i in range(self.arity)]
        if all(counts.size and (counts == 1).all() for _, counts in results):
            # one-to-one everywhere: reuse the elementwise fast path
            ctx.lwrite_elementwise(outcells, *[cells for cells, _ in results])
            return
        n = outcells.shape[0]
        out_offsets = np.arange(n + 1, dtype=np.int64)
        in_offsets = []
        for _, counts in results:
            off = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=off[1:])
            in_offsets.append(off)
        ctx.lwrite_batch(
            outcells,
            out_offsets,
            [cells for cells, _ in results],
            in_offsets,
        )

    # -- lineage declarations (Table I) ------------------------------------------

    def supported_modes(self) -> frozenset[LineageMode]:
        """Modes the optimizer may schedule for this operator.

        Default: black box only — the paper's conservative all-to-all
        assumption for un-instrumented operators.
        """
        return frozenset({LineageMode.BLACKBOX})

    def map_b_many(self, out_coords: np.ndarray, input_idx: int) -> np.ndarray:
        """Union of the backward lineage of ``out_coords`` in input ``input_idx``."""
        if self.all_to_all:
            self._require_bound()
            return C.all_coords(self.input_shapes[input_idx])
        raise LineageError(f"{self.name} defines no backward mapping function")

    def map_b_batch(
        self, out_coords: np.ndarray, input_idx: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Row-wise ``map_b``: per-output-cell backward lineage in one pass.

        Returns ``(in_coords, counts)`` where output row ``i`` depends on
        ``counts[i]`` consecutive rows of ``in_coords`` (rows appear in
        output-row order).  Unlike :meth:`map_b_many` this keeps per-row
        boundaries, so tracing re-execution can emit exact region pairs
        without a per-cell Python loop.  The default loops over rows calling
        :meth:`map_b_many`; built-in operators override it with vectorised
        implementations.
        """
        out_coords = C.as_coord_array(out_coords)
        n = out_coords.shape[0]
        pieces: list[np.ndarray] = []
        counts = np.empty(n, dtype=np.int64)
        for i in range(n):
            cells = self.map_b_many(out_coords[i : i + 1], input_idx)
            pieces.append(cells)
            counts[i] = cells.shape[0]
        if not pieces:
            self._require_bound()
            ndim = len(self.input_shapes[input_idx])
            return C.empty_coords(ndim), counts
        return np.concatenate(pieces), counts

    def map_f_many(self, in_coords: np.ndarray, input_idx: int) -> np.ndarray:
        """Union of the forward lineage of ``in_coords`` from input ``input_idx``."""
        if self.all_to_all:
            self._require_bound()
            return C.all_coords(self.output_shape)
        raise LineageError(f"{self.name} defines no forward mapping function")

    def map_p_many(
        self, out_coords: np.ndarray, payload: bytes, input_idx: int
    ) -> np.ndarray:
        """Expand a payload pair back into input cells (``map_p`` in Table I)."""
        raise LineageError(f"{self.name} defines no payload mapping function")

    #: True when ``map_p`` returns the same input cells for every output
    #: cell of a pair (e.g. all pixels of one detected star).  Lets forward
    #: payload scans test a pair once instead of per cell.
    payload_uniform: bool = False

    def map_p_batch(
        self, out_coords: np.ndarray, payloads, input_idx: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Row-wise ``map_p``: output cell ``i`` carries ``payloads[i]``.

        Returns ``(in_coords, row_idx)`` where ``in_coords[j]`` belongs to
        output row ``row_idx[j]``.  The default loops over rows calling
        :meth:`map_p_many`; operators with fixed-width payloads should
        override with a vectorised implementation.
        """
        out_coords = C.as_coord_array(out_coords)
        pieces: list[np.ndarray] = []
        rows: list[np.ndarray] = []
        for i in range(out_coords.shape[0]):
            if isinstance(payloads, np.ndarray):
                payload = payloads[i].tobytes()
            else:
                payload = payloads[i]
            cells = self.map_p_many(out_coords[i: i + 1], payload, input_idx)
            pieces.append(cells)
            rows.append(np.full(cells.shape[0], i, dtype=np.int64))
        if not pieces:
            return C.empty_coords(out_coords.shape[1]), np.empty(0, dtype=np.int64)
        return np.concatenate(pieces), np.concatenate(rows)

    # -- scalar conveniences matching the paper's signatures ------------------------

    def map_b(self, outcell: Sequence[int], input_idx: int = 0) -> np.ndarray:
        return self.map_b_many(C.as_coord_array([tuple(outcell)]), input_idx)

    def map_f(self, incell: Sequence[int], input_idx: int = 0) -> np.ndarray:
        return self.map_f_many(C.as_coord_array([tuple(incell)]), input_idx)

    def map_p(self, outcell: Sequence[int], payload: bytes, input_idx: int = 0) -> np.ndarray:
        return self.map_p_many(C.as_coord_array([tuple(outcell)]), payload, input_idx)

    # -- cost hints -------------------------------------------------------------

    def runtime_cost_hint(self) -> float:
        """Relative compute weight used by the cost model before any
        measurement exists (1.0 = cheap elementwise pass)."""
        return 1.0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} arity={self.arity}>"
