"""Exception hierarchy for the SubZero reproduction.

Every error raised by :mod:`repro` derives from :class:`SubZeroError` so
applications can catch library failures with a single ``except`` clause while
still being able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class SubZeroError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(SubZeroError):
    """An array schema is malformed or two schemas are incompatible."""


class CoordinateError(SubZeroError):
    """Cell coordinates are malformed or fall outside an array's extent."""


class VersionError(SubZeroError):
    """A version id is unknown or a no-overwrite rule would be violated."""


class StorageError(SubZeroError):
    """The lineage key-value store or blob store failed or was misused."""


class WorkflowError(SubZeroError):
    """A workflow specification is invalid or execution failed."""


class OperatorError(SubZeroError):
    """An operator was misconfigured or misbehaved at run time."""


class LineageError(SubZeroError):
    """Lineage was recorded or requested in an unsupported way."""


class QueryError(SubZeroError):
    """A lineage query path is invalid for the executed workflow."""


class OptimizationError(SubZeroError):
    """The lineage-strategy optimizer could not produce a feasible plan."""


class ProtocolError(SubZeroError):
    """A wire request/response does not conform to the query protocol."""


class QueueFullError(SubZeroError):
    """The serving daemon's bounded request queue rejected a request.

    The HTTP transport maps this to status 429; embedded callers of the
    admission gate receive the exception itself.  Backpressure contract:
    the daemon sheds load *explicitly* rather than buffering without bound.
    """
