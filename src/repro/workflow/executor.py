"""Workflow executor: runs a spec over inputs, persisting every version.

Each operator runs when its inputs are available (§IV); its output is
persisted as a new version (black-box lineage), its invocation is logged to
the WAL *before* the array data, and whatever region lineage it emitted is
encoded into the runtime's stores.
"""

from __future__ import annotations

import time
from typing import Mapping

from repro.arrays.array import SciArray
from repro.arrays.versions import VersionStore
from repro.core.runtime import LineageRuntime
from repro.errors import WorkflowError
from repro.ops.base import LineageContext
from repro.storage.wal import InvocationRecord, WriteAheadLog
from repro.workflow.instance import NodeExecution, WorkflowInstance
from repro.workflow.spec import WorkflowSpec

__all__ = ["execute_workflow"]


def execute_workflow(
    spec: WorkflowSpec,
    inputs: Mapping[str, SciArray],
    runtime: LineageRuntime | None = None,
    version_store: VersionStore | None = None,
    wal: WriteAheadLog | None = None,
) -> WorkflowInstance:
    """Execute ``spec`` on ``inputs`` and return the workflow instance.

    ``runtime`` carries the lineage strategy assignment; omit it to run with
    black-box lineage only (the workflow executor then still persists every
    intermediate, which is all black-box lineage needs).
    """
    spec.validate()
    runtime = runtime if runtime is not None else LineageRuntime()
    versions = version_store if version_store is not None else VersionStore()
    wal = wal if wal is not None else WriteAheadLog()

    missing = [s for s in spec.sources if s not in inputs]
    if missing:
        raise WorkflowError(f"missing input arrays for sources: {missing}")
    extra = [s for s in inputs if s not in spec.sources]
    if extra:
        raise WorkflowError(f"inputs supplied for unknown sources: {extra}")

    instance = WorkflowInstance(spec=spec, versions=versions)
    for source in spec.sources:
        version = versions.put(source, inputs[source])
        instance.source_versions[source] = version.version_id

    produced: dict[str, int] = dict(instance.source_versions)
    for node_name in spec.topo_order():
        node = spec.node(node_name)
        op = node.operator
        input_versions = tuple(produced[dep] for dep in node.inputs)
        input_arrays = [versions.get(v).array for v in input_versions]
        op.bind(tuple(arr.schema for arr in input_arrays))
        runtime.prepare_node(node_name, op)

        cur_modes = runtime.cur_modes(node_name, op)
        sink = runtime.make_sink()
        ctx = LineageContext(cur_modes=cur_modes, sink=sink, node=node_name)

        start = time.perf_counter()
        output = op.run(input_arrays, ctx)
        compute_seconds = time.perf_counter() - start

        if output.shape != op.output_schema.shape:
            raise WorkflowError(
                f"node {node_name!r} produced shape {output.shape}, "
                f"declared {op.output_schema.shape}"
            )

        # WAL before array data ("black-box lineage is written before the
        # array data", §VI-A).
        wal.append(
            InvocationRecord(
                node=node_name,
                op_name=type(op).__name__,
                input_versions=input_versions,
                output_version=len(versions),
                lineage_modes=tuple(sorted(m.value for m in cur_modes)),
            )
        )
        version = versions.put(
            node_name, output, parents=input_versions, producer=node_name
        )
        produced[node_name] = version.version_id

        lineage_seconds = runtime.ingest(
            node_name, sink, out_shape=op.output_shape, in_shapes=op.input_shapes
        )
        runtime.stats.record_run(
            node_name,
            compute_seconds,
            output.size,
            tuple(arr.size for arr in input_arrays),
        )
        instance.executions[node_name] = NodeExecution(
            node=node_name,
            operator=op,
            input_versions=input_versions,
            output_version=version.version_id,
            compute_seconds=compute_seconds,
            lineage_seconds=lineage_seconds,
        )
    # Join any background encodes before handing the instance back, so a
    # deferred run's lineage is queryable (and failures surface) on return.
    runtime.drain_capture()
    return instance
