"""An executed workflow: versions, bound operators, per-node timings.

``W_j`` in the paper's notation — one run of a workflow specification on a
concrete dataset.  The instance remembers enough to (a) re-run any operator
from its persisted input versions (black-box lineage) and (b) validate
lineage query paths against the actual dataflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arrays.array import SciArray
from repro.arrays.versions import VersionStore
from repro.errors import QueryError, WorkflowError
from repro.ops.base import Operator
from repro.workflow.spec import WorkflowSpec

__all__ = ["NodeExecution", "WorkflowInstance"]


@dataclass
class NodeExecution:
    """Bookkeeping for one operator invocation inside an instance."""

    node: str
    operator: Operator
    input_versions: tuple[int, ...]
    output_version: int
    compute_seconds: float = 0.0
    lineage_seconds: float = 0.0


@dataclass
class WorkflowInstance:
    """The result of executing a :class:`WorkflowSpec` on concrete inputs."""

    spec: WorkflowSpec
    versions: VersionStore
    source_versions: dict[str, int] = field(default_factory=dict)
    executions: dict[str, NodeExecution] = field(default_factory=dict)

    # -- array access --------------------------------------------------------

    def source_array(self, name: str) -> SciArray:
        if name not in self.source_versions:
            raise WorkflowError(f"unknown source {name!r}")
        return self.versions.get(self.source_versions[name]).array

    def output_array(self, node: str) -> SciArray:
        if node not in self.executions:
            raise WorkflowError(f"node {node!r} has not executed")
        return self.versions.get(self.executions[node].output_version).array

    def array_of(self, name: str) -> SciArray:
        """Array produced by a node, or a source array."""
        if name in self.executions:
            return self.output_array(name)
        return self.source_array(name)

    def input_arrays(self, node: str) -> list[SciArray]:
        execution = self.executions[node]
        return [self.versions.get(v).array for v in execution.input_versions]

    def operator(self, node: str) -> Operator:
        if node not in self.executions:
            raise WorkflowError(f"node {node!r} has not executed")
        return self.executions[node].operator

    # -- shapes (needed constantly by the query executor) ------------------------

    def output_shape(self, node: str) -> tuple[int, ...]:
        return self.output_array(node).shape

    def input_shape(self, node: str, input_idx: int) -> tuple[int, ...]:
        op = self.operator(node)
        return op.input_shapes[input_idx]

    # -- query-path validation (§IV query model) -----------------------------------

    def validate_backward_path(self, path) -> None:
        """``P_{i+1}`` must produce input ``idx_i`` of ``P_i``."""
        for step in path:
            if step.node not in self.executions:
                raise QueryError(f"query path visits unexecuted node {step.node!r}")
            arity = self.operator(step.node).arity
            if not 0 <= step.input_idx < arity:
                raise QueryError(
                    f"node {step.node!r} has no input index {step.input_idx}"
                )
        for cur, nxt in zip(path, path[1:]):
            producer = self.spec.producer(cur.node, cur.input_idx)
            if producer != nxt.node:
                raise QueryError(
                    f"backward path broken: input {cur.input_idx} of {cur.node!r} "
                    f"is produced by {producer!r}, not {nxt.node!r}"
                )

    def validate_forward_path(self, path) -> None:
        """The output of ``P_{i-1}`` must be input ``idx_i`` of ``P_i``."""
        for step in path:
            if step.node not in self.executions:
                raise QueryError(f"query path visits unexecuted node {step.node!r}")
            arity = self.operator(step.node).arity
            if not 0 <= step.input_idx < arity:
                raise QueryError(
                    f"node {step.node!r} has no input index {step.input_idx}"
                )
        for prev, cur in zip(path, path[1:]):
            producer = self.spec.producer(cur.node, cur.input_idx)
            if producer != prev.node:
                raise QueryError(
                    f"forward path broken: input {cur.input_idx} of {cur.node!r} "
                    f"is produced by {producer!r}, not {prev.node!r}"
                )

    # -- accounting ---------------------------------------------------------------------

    def total_compute_seconds(self) -> float:
        return sum(e.compute_seconds for e in self.executions.values())

    def total_lineage_seconds(self) -> float:
        return sum(e.lineage_seconds for e in self.executions.values())
