"""Workflow specifications: a DAG of operators over named source arrays.

A workflow specification is a directed acyclic graph ``W = (N, E)`` where
``N`` is a set of operators and an edge ``(O_P, I^i_{P'})`` says the output
of ``P`` is the ``i``'th input of ``P'`` (§IV).  Sources are externally
supplied arrays (the telescope images, the patient matrices).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkflowError
from repro.ops.base import Operator

__all__ = ["WorkflowNode", "WorkflowSpec"]


@dataclass(frozen=True)
class WorkflowNode:
    """One operator in the DAG; ``inputs[i]`` names the node or source that
    feeds the operator's ``i``'th input."""

    name: str
    operator: Operator
    inputs: tuple[str, ...]


@dataclass
class WorkflowSpec:
    """Mutable builder + validated container for a workflow DAG."""

    name: str = "workflow"
    sources: list[str] = field(default_factory=list)
    _nodes: dict[str, WorkflowNode] = field(default_factory=dict)

    # -- construction ------------------------------------------------------

    def add_source(self, name: str) -> str:
        """Declare an externally supplied input array."""
        if name in self.sources or name in self._nodes:
            raise WorkflowError(f"duplicate name {name!r} in workflow {self.name!r}")
        self.sources.append(name)
        return name

    def add_node(self, name: str, operator: Operator, inputs: list[str] | str) -> str:
        """Add an operator fed by the named ``inputs`` (sources or nodes)."""
        if isinstance(inputs, str):
            inputs = [inputs]
        if name in self._nodes or name in self.sources:
            raise WorkflowError(f"duplicate name {name!r} in workflow {self.name!r}")
        if len(inputs) != operator.arity:
            raise WorkflowError(
                f"node {name!r}: operator {operator.name!r} takes {operator.arity} "
                f"inputs, got {len(inputs)}"
            )
        for dep in inputs:
            if dep not in self._nodes and dep not in self.sources:
                raise WorkflowError(f"node {name!r}: unknown input {dep!r}")
        for node in self._nodes.values():
            if node.operator is operator:
                raise WorkflowError(
                    f"operator instance {operator.name!r} is already bound to node "
                    f"{node.name!r}; create one instance per node"
                )
        operator.name = name
        self._nodes[name] = WorkflowNode(name, operator, tuple(inputs))
        return name

    # -- accessors ------------------------------------------------------------

    @property
    def nodes(self) -> dict[str, WorkflowNode]:
        return dict(self._nodes)

    def node(self, name: str) -> WorkflowNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise WorkflowError(f"unknown node {name!r}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def producer(self, node_name: str, input_idx: int) -> str:
        """Name of the node/source feeding ``node_name``'s ``input_idx``."""
        node = self.node(node_name)
        if not 0 <= input_idx < len(node.inputs):
            raise WorkflowError(
                f"node {node_name!r} has no input index {input_idx}"
            )
        return node.inputs[input_idx]

    def consumers(self, name: str) -> list[tuple[str, int]]:
        """Every ``(node, input_idx)`` fed by node or source ``name``."""
        out = []
        for node in self._nodes.values():
            for idx, dep in enumerate(node.inputs):
                if dep == name:
                    out.append((node.name, idx))
        return out

    def sinks(self) -> list[str]:
        """Nodes whose output feeds no other node (workflow outputs)."""
        consumed = {dep for node in self._nodes.values() for dep in node.inputs}
        return [name for name in self._nodes if name not in consumed]

    # -- validation -----------------------------------------------------------------

    def topo_order(self) -> list[str]:
        """Kahn's algorithm; raises on cycles (defensive — the builder API
        cannot create one, but specs may be constructed programmatically)."""
        in_degree = {
            name: sum(1 for dep in node.inputs if dep in self._nodes)
            for name, node in self._nodes.items()
        }
        ready = sorted(name for name, deg in in_degree.items() if deg == 0)
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for consumer, _ in self.consumers(name):
                in_degree[consumer] -= 1
                if in_degree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self._nodes):
            raise WorkflowError(f"workflow {self.name!r} contains a cycle")
        return order

    def validate(self) -> None:
        if not self._nodes:
            raise WorkflowError(f"workflow {self.name!r} has no operators")
        self.topo_order()

    # -- path inference ---------------------------------------------------------

    def lineage_path(self, start: str, end: str) -> list[tuple[str, int]]:
        """Shortest backward query path from node ``start`` to ``end``.

        Returns ``[(P1, idx1), ...]`` steps such that the output of each
        ``P_{i+1}`` feeds input ``idx_i`` of ``P_i`` and the last step's
        input is produced by ``end`` (a node or a source).  The reversed
        list is a valid forward path from ``end`` to ``start``.
        """
        if start not in self._nodes:
            raise WorkflowError(f"unknown start node {start!r}")
        if end not in self._nodes and end not in self.sources:
            raise WorkflowError(f"unknown end {end!r}")
        if start == end:
            raise WorkflowError("start and end must differ")
        # BFS backward over (node) states; remember the step taken.
        frontier = [start]
        parent: dict[str, tuple[str, int]] = {}  # node -> (consumer, input_idx)
        seen = {start}
        while frontier:
            next_frontier = []
            for node in frontier:
                for idx, dep in enumerate(self._nodes[node].inputs):
                    if dep == end:
                        return self._assemble_path(start, node, idx, parent)
                    if dep in self._nodes and dep not in seen:
                        seen.add(dep)
                        parent[dep] = (node, idx)
                        next_frontier.append(dep)
            frontier = next_frontier
        raise WorkflowError(f"no dataflow path from {end!r} to {start!r}")

    def _assemble_path(
        self,
        start: str,
        last_node: str,
        last_idx: int,
        parent: dict[str, tuple[str, int]],
    ) -> list[tuple[str, int]]:
        path = [(last_node, last_idx)]
        node = last_node
        while node != start:
            consumer, idx = parent[node]
            path.append((consumer, idx))
            node = consumer
        path.reverse()
        return path

    def __len__(self) -> int:
        return len(self._nodes)
