"""Crash recovery: rebuild a workflow instance from the WAL + version store.

Black-box lineage is exactly "the intermediate results plus the invocation
log" (§V-a); if the process dies after a run, those two artifacts suffice to
reconstruct a queryable :class:`~repro.workflow.instance.WorkflowInstance`
without re-executing anything — operators re-bind to the persisted input
versions and lineage queries (including black-box re-execution) work as
before.  Region-lineage stores are a cache and can be reloaded separately
via :meth:`~repro.core.runtime.LineageRuntime.load_all` or simply rebuilt.
"""

from __future__ import annotations

from repro.arrays.versions import VersionStore
from repro.errors import WorkflowError
from repro.storage.wal import WriteAheadLog
from repro.workflow.instance import NodeExecution, WorkflowInstance
from repro.workflow.spec import WorkflowSpec

__all__ = ["recover_instance"]


def recover_instance(
    spec: WorkflowSpec,
    versions: VersionStore,
    wal: WriteAheadLog,
) -> WorkflowInstance:
    """Reconstruct the most recent execution of ``spec`` from its artifacts.

    Uses the *last* WAL record per node (the most recent run wins, matching
    the no-overwrite version store).  Raises
    :class:`~repro.errors.WorkflowError` when the log references versions
    the store does not hold, or covers only part of the workflow.
    """
    spec.validate()
    latest = {}
    for record in wal:
        latest[record.node] = record

    missing = [name for name in spec.nodes if name not in latest]
    if missing:
        raise WorkflowError(
            f"WAL does not cover nodes {missing}; cannot recover a full instance"
        )

    instance = WorkflowInstance(spec=spec, versions=versions)

    # Source versions: the recorded inputs of nodes that consume sources.
    for name, node in spec.nodes.items():
        record = latest[name]
        if len(record.input_versions) != len(node.inputs):
            raise WorkflowError(
                f"WAL record for {name!r} has {len(record.input_versions)} inputs; "
                f"spec expects {len(node.inputs)}"
            )
        for dep, vid in zip(node.inputs, record.input_versions):
            if vid not in versions:
                raise WorkflowError(
                    f"version {vid} (input of {name!r}) missing from the store"
                )
            if dep in spec.sources:
                instance.source_versions[dep] = vid

    for name in spec.topo_order():
        node = spec.node(name)
        record = latest[name]
        if record.output_version not in versions:
            raise WorkflowError(
                f"output version {record.output_version} of {name!r} missing"
            )
        input_arrays = [versions.get(v).array for v in record.input_versions]
        op = node.operator
        op.bind(tuple(arr.schema for arr in input_arrays))
        produced = versions.get(record.output_version).array
        if produced.shape != op.output_schema.shape:
            raise WorkflowError(
                f"recovered output of {name!r} has shape {produced.shape}; "
                f"operator declares {op.output_schema.shape}"
            )
        instance.executions[name] = NodeExecution(
            node=name,
            operator=op,
            input_versions=tuple(record.input_versions),
            output_version=record.output_version,
        )
    return instance
