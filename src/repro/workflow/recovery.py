"""Crash recovery: rebuild a workflow instance from the WAL + version store.

Black-box lineage is exactly "the intermediate results plus the invocation
log" (§V-a); if the process dies after a run, those two artifacts suffice to
reconstruct a queryable :class:`~repro.workflow.instance.WorkflowInstance`
without re-executing anything — operators re-bind to the persisted input
versions and lineage queries (including black-box re-execution) work as
before.

Region-lineage stores are a cache, persisted as checksummed segment files
behind a catalog manifest (:mod:`repro.core.catalog`).  Recovery does not
trust those files blindly: :func:`recover_lineage` verifies every section
checksum against the segment manifests and *quarantines* corrupt segments
(renames them aside and drops them from the catalog) instead of serving
garbage — the lineage they held is rebuildable by re-running the operator,
which is exactly the cache contract (§VI-A).

Generational catalogs are verified *per generation*: a torn delta segment
(interrupted append, bit-flip, or a file a partial delete removed outright
— missing files take the same quarantine path as checksum failures, never
a raw ``FileNotFoundError``) is quarantined alone, and the generations
under it keep serving.  Recovery also sweeps up generation files the
manifest no longer references — the residue of a crash between
compaction's manifest swap and its deferred unlink.

Partitioned catalogs (:mod:`repro.storage.partition`) recover *per
partition*: each live partition's segments are verified exactly like a
monolithic catalog's, and a partition whose own ``catalog.json`` is torn
is quarantined whole — flagged in the root ``partitions.json`` manifest so
later loads skip it — degrading only that partition's nodes while every
other partition keeps serving.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.arrays.versions import VersionStore
from repro.core.catalog import MANIFEST_NAME, StoreCatalog
from repro.errors import StorageError, WorkflowError
from repro.storage.segment import generation_files, generation_path, open_segment, segment_files
from repro.storage.wal import WriteAheadLog
from repro.workflow.instance import NodeExecution, WorkflowInstance
from repro.workflow.spec import WorkflowSpec

__all__ = ["recover_instance", "recover_lineage", "LineageRecovery"]

#: suffix appended to a corrupt segment file when it is quarantined
QUARANTINE_SUFFIX = ".quarantined"


@dataclass
class LineageRecovery:
    """Outcome of :func:`recover_lineage`: the verified catalog plus what
    had to be set aside."""

    #: the verified :class:`StoreCatalog` — or a
    #: :class:`~repro.storage.partition.PartitionedCatalog` when the
    #: directory held a partitioned root
    catalog: object
    #: ``(segment filename, StorageError)`` per quarantined segment; for a
    #: partitioned catalog the filename is partition-qualified
    #: (``"p1/smooth__full...seg"``), and a partition torn whole reports as
    #: its manifest path (``"p1/catalog.json"``)
    quarantined: list[tuple[str, StorageError]] = field(default_factory=list)
    #: unreferenced generation files swept up (compaction-crash residue)
    removed_stale: list[str] = field(default_factory=list)
    #: partition ids set aside whole (torn child manifest) — empty for a
    #: monolithic catalog
    quarantined_partitions: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.quarantined


def recover_lineage(
    directory: str,
    runtime=None,
    strict: bool = False,
) -> LineageRecovery:
    """Recover a flushed lineage catalog, trusting checksums over bare files.

    Every segment the manifest records — one per store *generation* — is
    opened and checksum-verified section by section.  A segment that fails
    — truncated, bit-flipped, structurally invalid, or with files missing
    outright (a partially deleted store directory surfaces the same way,
    never as a raw ``FileNotFoundError``) — is *quarantined*: whatever
    files remain are renamed with :data:`QUARANTINE_SUFFIX`, that
    generation is dropped from the catalog, and the failure is reported as
    a :class:`~repro.errors.StorageError` in the result (or raised
    immediately when ``strict=True``).  A torn generation never takes the
    generations under it down: the rest of the key keeps serving, so an
    interrupted append or compaction costs only the delta it was writing.
    Quarantined lineage can be rebuilt by re-running the workflow.

    Generation files no manifest entry references — left behind when a
    crash hit between compaction's manifest swap and its deferred unlink —
    are removed and reported in ``removed_stale``.

    ``runtime`` (a :class:`~repro.core.runtime.LineageRuntime`) is attached
    to the verified catalog when given, so queries resume lazily off the
    surviving segments.

    A partitioned root (``partitions.json``) recovers partition by
    partition: live partitions are verified like monolithic catalogs (their
    quarantined segment names come back partition-qualified), and a
    partition whose child manifest itself fails to open is quarantined
    *whole* — flagged in the root manifest, listed in
    ``quarantined_partitions`` — so only its nodes degrade.
    """
    from repro.storage.partition import PartitionedCatalog, is_partitioned_root

    if is_partitioned_root(directory):
        root = PartitionedCatalog.open(directory)
        quarantined: list[tuple[str, StorageError]] = []
        removed_stale: list[str] = []
        torn: list[str] = []
        for pid, exc in root.degraded:
            error = StorageError(
                f"partition {pid!r} failed to open and was quarantined "
                f"whole: {exc}"
            )
            if strict:
                raise error from exc
            torn.append(pid)
            quarantined.append((f"{pid}/{MANIFEST_NAME}", error))
        for pid in root.partition_ids():
            child = root.partition(pid)
            if child is None:
                continue
            bad, stale = _verify_catalog(child, strict=strict, prefix=f"{pid}/")
            quarantined.extend(bad)
            removed_stale.extend(stale)
        for pid in torn:
            # persist the verdict so later plain load_all calls skip the
            # torn partition instead of re-degrading it on every open
            root.mark_quarantined(pid)
        if runtime is not None:
            runtime.attach_catalog(root)
        return LineageRecovery(
            catalog=root,
            quarantined=quarantined,
            removed_stale=removed_stale,
            quarantined_partitions=torn,
        )

    catalog = StoreCatalog.open(directory)
    quarantined, removed_stale = _verify_catalog(catalog, strict=strict)
    if runtime is not None:
        runtime.attach_catalog(catalog)
    return LineageRecovery(
        catalog=catalog, quarantined=quarantined, removed_stale=removed_stale
    )


def _verify_catalog(
    catalog: StoreCatalog, strict: bool = False, prefix: str = ""
) -> tuple[list[tuple[str, StorageError]], list[str]]:
    """Checksum-verify one catalog's segments, quarantining failures (see
    :func:`recover_lineage`); returns ``(quarantined, removed_stale)`` with
    filenames ``prefix``-qualified for partition-aware reporting."""
    directory = catalog.directory
    quarantined: list[tuple[str, StorageError]] = []
    for entry in catalog.entries():
        path = os.path.join(directory, entry.file)
        try:
            # open_segment resolves both monolithic segments and sharded
            # ``.seg.0..k`` stores; verify=True checksums every shard.  The
            # mapping is closed before any rename: Windows cannot rename a
            # mapped file, so quarantine must not depend on GC timing.
            # FileNotFoundError (and every other OSError) is caught here so
            # a half-deleted store quarantines exactly like a corrupt one.
            seg = open_segment(path, verify=True)
            seg.close()
        except (StorageError, OSError) as exc:
            generation = f", generation {entry.gen}" if entry.gen else ""
            error = StorageError(
                f"lineage segment {prefix + entry.file!r} (store {entry.node!r} / "
                f"{entry.strategy.label}{generation}) failed verification "
                f"and was quarantined: {exc}"
            )
            if strict:
                raise error from exc
            for fname in entry.files:  # every shard of a sharded store
                fpath = os.path.join(directory, fname)
                if os.path.exists(fpath):
                    os.replace(fpath, fpath + QUARANTINE_SUFFIX)
            catalog.drop_generation(entry.node, entry.strategy, entry.gen)
            quarantined.append((prefix + entry.file, error))
    removed_stale = [
        prefix + name for name in _remove_stale_generations(directory, catalog)
    ]
    if quarantined:
        # persist the quarantine: a later plain load_all must not re-register
        # strategies whose segments were set aside
        catalog.save_manifest()
    return quarantined, removed_stale


def _remove_stale_generations(directory: str, catalog: StoreCatalog) -> list[str]:
    """Delete generation files the manifest does not reference.

    A compaction that crashed after its atomic manifest swap but before the
    deferred unlink leaves fully-merged delta files behind; they are pure
    residue (their lineage lives in the merged base segment), but a later
    append must not trip over their ordinals forever.  Only files carrying
    the ``.gen.`` infix are candidates — base segments are never touched.
    """
    from repro.core.catalog import store_filename

    referenced = {f for entry in catalog.entries() for f in entry.files}
    removed: list[str] = []
    for node, strategy in catalog.keys():
        # derive the base path from the key, not from a gen-0 entry: a key
        # whose base generation was itself quarantined must still have its
        # unreferenced delta residue swept
        base_path = os.path.join(directory, store_filename(node, strategy))
        for gen, files in sorted(generation_files(base_path).items()):
            if gen == 0:
                continue
            if any(os.path.basename(f) in referenced for f in files):
                continue
            for fpath in segment_files(generation_path(base_path, gen)):
                try:
                    os.remove(fpath)
                except OSError:
                    continue
                removed.append(os.path.basename(fpath))
    return removed


def recover_instance(
    spec: WorkflowSpec,
    versions: VersionStore,
    wal: WriteAheadLog,
) -> WorkflowInstance:
    """Reconstruct the most recent execution of ``spec`` from its artifacts.

    Uses the *last* WAL record per node (the most recent run wins, matching
    the no-overwrite version store).  Raises
    :class:`~repro.errors.WorkflowError` when the log references versions
    the store does not hold, or covers only part of the workflow.
    """
    spec.validate()
    # Delta-aware replay: the WAL is append-only and only the newest record
    # per node matters, so scan backwards and stop at the first moment every
    # spec node has been seen.  A long-lived log — many incremental runs,
    # each committing one delta generation — replays O(nodes) records
    # instead of O(history): everything older than the last committed
    # generation of each node is never touched.
    latest = {}
    want = len(spec.nodes)
    for record in reversed(wal.records()):
        if record.node not in latest and record.node in spec.nodes:
            latest[record.node] = record
            if len(latest) == want:
                break

    missing = [name for name in spec.nodes if name not in latest]
    if missing:
        raise WorkflowError(
            f"WAL does not cover nodes {missing}; cannot recover a full instance"
        )

    instance = WorkflowInstance(spec=spec, versions=versions)

    # Source versions: the recorded inputs of nodes that consume sources.
    for name, node in spec.nodes.items():
        record = latest[name]
        if len(record.input_versions) != len(node.inputs):
            raise WorkflowError(
                f"WAL record for {name!r} has {len(record.input_versions)} inputs; "
                f"spec expects {len(node.inputs)}"
            )
        for dep, vid in zip(node.inputs, record.input_versions):
            if vid not in versions:
                raise WorkflowError(
                    f"version {vid} (input of {name!r}) missing from the store"
                )
            if dep in spec.sources:
                instance.source_versions[dep] = vid

    for name in spec.topo_order():
        node = spec.node(name)
        record = latest[name]
        if record.output_version not in versions:
            raise WorkflowError(
                f"output version {record.output_version} of {name!r} missing"
            )
        input_arrays = [versions.get(v).array for v in record.input_versions]
        op = node.operator
        op.bind(tuple(arr.schema for arr in input_arrays))
        produced = versions.get(record.output_version).array
        if produced.shape != op.output_schema.shape:
            raise WorkflowError(
                f"recovered output of {name!r} has shape {produced.shape}; "
                f"operator declares {op.output_schema.shape}"
            )
        instance.executions[name] = NodeExecution(
            node=name,
            operator=op,
            input_versions=tuple(record.input_versions),
            output_version=record.output_version,
        )
    return instance
