"""Crash recovery: rebuild a workflow instance from the WAL + version store.

Black-box lineage is exactly "the intermediate results plus the invocation
log" (§V-a); if the process dies after a run, those two artifacts suffice to
reconstruct a queryable :class:`~repro.workflow.instance.WorkflowInstance`
without re-executing anything — operators re-bind to the persisted input
versions and lineage queries (including black-box re-execution) work as
before.

Region-lineage stores are a cache, persisted as checksummed segment files
behind a catalog manifest (:mod:`repro.core.catalog`).  Recovery does not
trust those files blindly: :func:`recover_lineage` verifies every section
checksum against the segment manifests and *quarantines* corrupt segments
(renames them aside and drops them from the catalog) instead of serving
garbage — the lineage they held is rebuildable by re-running the operator,
which is exactly the cache contract (§VI-A).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.arrays.versions import VersionStore
from repro.core.catalog import StoreCatalog
from repro.errors import StorageError, WorkflowError
from repro.storage.segment import open_segment
from repro.storage.wal import WriteAheadLog
from repro.workflow.instance import NodeExecution, WorkflowInstance
from repro.workflow.spec import WorkflowSpec

__all__ = ["recover_instance", "recover_lineage", "LineageRecovery"]

#: suffix appended to a corrupt segment file when it is quarantined
QUARANTINE_SUFFIX = ".quarantined"


@dataclass
class LineageRecovery:
    """Outcome of :func:`recover_lineage`: the verified catalog plus what
    had to be set aside."""

    catalog: StoreCatalog
    #: ``(segment filename, StorageError)`` per quarantined segment
    quarantined: list[tuple[str, StorageError]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.quarantined


def recover_lineage(
    directory: str,
    runtime=None,
    strict: bool = False,
) -> LineageRecovery:
    """Recover a flushed lineage catalog, trusting checksums over bare files.

    Every segment the manifest records is opened and checksum-verified
    section by section.  A segment that fails — truncated, bit-flipped,
    structurally invalid — is *quarantined*: the file is renamed with
    :data:`QUARANTINE_SUFFIX`, the store is dropped from the catalog, and
    the failure is reported as a :class:`~repro.errors.StorageError` in the
    result (or raised immediately when ``strict=True``).  Healthy stores
    keep serving; the quarantined lineage can be rebuilt by re-running the
    workflow.

    ``runtime`` (a :class:`~repro.core.runtime.LineageRuntime`) is attached
    to the verified catalog when given, so queries resume lazily off the
    surviving segments.
    """
    catalog = StoreCatalog.open(directory)
    quarantined: list[tuple[str, StorageError]] = []
    for entry in catalog.entries():
        path = os.path.join(directory, entry.file)
        try:
            # open_segment resolves both monolithic segments and sharded
            # ``.seg.0..k`` stores; verify=True checksums every shard.  The
            # mapping is closed before any rename: Windows cannot rename a
            # mapped file, so quarantine must not depend on GC timing.
            seg = open_segment(path, verify=True)
            seg.close()
        except (StorageError, OSError) as exc:
            error = StorageError(
                f"lineage segment {entry.file!r} (store {entry.node!r} / "
                f"{entry.strategy.label}) failed verification and was "
                f"quarantined: {exc}"
            )
            if strict:
                raise error from exc
            for fname in entry.files:  # every shard of a sharded store
                fpath = os.path.join(directory, fname)
                if os.path.exists(fpath):
                    os.replace(fpath, fpath + QUARANTINE_SUFFIX)
            catalog.drop(entry.node, entry.strategy)
            quarantined.append((entry.file, error))
    if quarantined:
        # persist the quarantine: a later plain load_all must not re-register
        # strategies whose segments were set aside
        catalog.save_manifest()
    if runtime is not None:
        runtime.attach_catalog(catalog)
    return LineageRecovery(catalog=catalog, quarantined=quarantined)


def recover_instance(
    spec: WorkflowSpec,
    versions: VersionStore,
    wal: WriteAheadLog,
) -> WorkflowInstance:
    """Reconstruct the most recent execution of ``spec`` from its artifacts.

    Uses the *last* WAL record per node (the most recent run wins, matching
    the no-overwrite version store).  Raises
    :class:`~repro.errors.WorkflowError` when the log references versions
    the store does not hold, or covers only part of the workflow.
    """
    spec.validate()
    latest = {}
    for record in wal:
        latest[record.node] = record

    missing = [name for name in spec.nodes if name not in latest]
    if missing:
        raise WorkflowError(
            f"WAL does not cover nodes {missing}; cannot recover a full instance"
        )

    instance = WorkflowInstance(spec=spec, versions=versions)

    # Source versions: the recorded inputs of nodes that consume sources.
    for name, node in spec.nodes.items():
        record = latest[name]
        if len(record.input_versions) != len(node.inputs):
            raise WorkflowError(
                f"WAL record for {name!r} has {len(record.input_versions)} inputs; "
                f"spec expects {len(node.inputs)}"
            )
        for dep, vid in zip(node.inputs, record.input_versions):
            if vid not in versions:
                raise WorkflowError(
                    f"version {vid} (input of {name!r}) missing from the store"
                )
            if dep in spec.sources:
                instance.source_versions[dep] = vid

    for name in spec.topo_order():
        node = spec.node(name)
        record = latest[name]
        if record.output_version not in versions:
            raise WorkflowError(
                f"output version {record.output_version} of {name!r} missing"
            )
        input_arrays = [versions.get(v).array for v in record.input_versions]
        op = node.operator
        op.bind(tuple(arr.schema for arr in input_arrays))
        produced = versions.get(record.output_version).array
        if produced.shape != op.output_schema.shape:
            raise WorkflowError(
                f"recovered output of {name!r} has shape {produced.shape}; "
                f"operator declares {op.output_schema.shape}"
            )
        instance.executions[name] = NodeExecution(
            node=name,
            operator=op,
            input_versions=tuple(record.input_versions),
            output_version=record.output_version,
        )
    return instance
