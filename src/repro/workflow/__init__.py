"""Workflow substrate: DAG specification, executor, executed instances."""

from repro.workflow.executor import execute_workflow
from repro.workflow.instance import NodeExecution, WorkflowInstance
from repro.workflow.recovery import recover_instance
from repro.workflow.spec import WorkflowNode, WorkflowSpec

__all__ = [
    "WorkflowSpec",
    "WorkflowNode",
    "WorkflowInstance",
    "NodeExecution",
    "execute_workflow",
    "recover_instance",
]
