"""Result tables for the benchmark harness.

Each figure-reproduction bench assembles a :class:`ResultTable` whose rows
mirror the series the paper plots, prints it, and (optionally) writes CSV so
EXPERIMENTS.md can quote exact numbers.

:func:`write_bench_json` is the machine-readable sibling: benches publish a
flat ``metric -> value`` mapping to ``BENCH_<name>.json`` so CI can diff
perf trajectory against committed baselines
(``benchmarks/check_regressions.py``) instead of a human reading tables.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

__all__ = ["ResultTable", "write_bench_json"]


def write_bench_json(name: str, metrics: dict, directory: str | None = None) -> str:
    """Merge ``metrics`` into ``BENCH_<name>.json`` and return its path.

    The file is a flat ``{"bench": name, "metrics": {metric: number}}``
    object.  Multiple tests of one bench module call this with their own
    metrics; existing keys are updated, others preserved, and the write is
    atomic (tmp + rename) so a crashed bench never leaves a torn file.
    ``directory`` defaults to ``$BENCH_JSON_DIR`` or the working directory
    (where CI uploads ``BENCH_*.json`` as artifacts).
    """
    directory = directory or os.environ.get("BENCH_JSON_DIR", ".")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    merged: dict = {}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as fh:
                merged = json.load(fh).get("metrics", {})
        except (OSError, ValueError):
            merged = {}
    for key, value in metrics.items():
        merged[str(key)] = float(value)
    payload = {"bench": name, "metrics": dict(sorted(merged.items()))}
    tmp = path + ".tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        # a failed report write must not litter the bench directory with a
        # half-written tmp the next merge would mistake for a report
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    return path


@dataclass
class ResultTable:
    """A titled table with fixed columns and aligned plain-text rendering."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values; table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    # -- rendering -----------------------------------------------------------

    @staticmethod
    def _format(value) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            if abs(value) >= 1:
                return f"{value:.2f}"
            return f"{value:.4f}"
        return str(value)

    def render(self) -> str:
        cells = [[self._format(v) for v in row] for row in self.rows]
        widths = [
            max(len(col), *(len(row[i]) for row in cells)) if cells else len(col)
            for i, col in enumerate(self.columns)
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(col.ljust(w) for col, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def print(self) -> None:
        print("\n" + self.render() + "\n")

    def to_csv(self, path: str) -> None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(",".join(self.columns) + "\n")
            for row in self.rows:
                fh.write(",".join(self._format(v) for v in row) + "\n")
