"""Result tables for the benchmark harness.

Each figure-reproduction bench assembles a :class:`ResultTable` whose rows
mirror the series the paper plots, prints it, and (optionally) writes CSV so
EXPERIMENTS.md can quote exact numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

__all__ = ["ResultTable"]


@dataclass
class ResultTable:
    """A titled table with fixed columns and aligned plain-text rendering."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values; table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    # -- rendering -----------------------------------------------------------

    @staticmethod
    def _format(value) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            if abs(value) >= 1:
                return f"{value:.2f}"
            return f"{value:.4f}"
        return str(value)

    def render(self) -> str:
        cells = [[self._format(v) for v in row] for row in self.rows]
        widths = [
            max(len(col), *(len(row[i]) for row in cells)) if cells else len(col)
            for i, col in enumerate(self.columns)
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(col.ljust(w) for col, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def print(self) -> None:
        print("\n" + self.render() + "\n")

    def to_csv(self, path: str) -> None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(",".join(self.columns) + "\n")
            for row in self.rows:
                fh.write(",".join(self._format(v) for v in row) + "\n")
