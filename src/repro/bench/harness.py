"""Experiment drivers that regenerate every figure of the evaluation (§VIII).

Each ``run_*`` function executes one paper experiment and returns structured
results; the ``benchmarks/bench_fig*.py`` files wrap them for
pytest-benchmark and print the paper-shaped tables.  Scales default to
laptop-friendly sizes; pass the paper's full parameters (astronomy
512x2000, genomics scale 100, micro 1000x1000) to reproduce at scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.modes import (
    COMP_ONE_B,
    FULL_MANY_B,
    FULL_ONE_B,
    FULL_ONE_F,
    PAY_MANY_B,
    PAY_ONE_B,
    StorageStrategy,
)
from repro.core.subzero import SubZero
from repro.bench.astronomy import AstronomyBenchmark
from repro.bench.astronomy import UDF_NODES as ASTRO_UDFS
from repro.bench.genomics import GenomicsBenchmark
from repro.bench.genomics import UDF_NODES as GENOMICS_UDFS
from repro.bench.micro import MicroBenchmark
from repro.bench.report import ResultTable

__all__ = [
    "StrategyRun",
    "ASTRONOMY_CONFIGS",
    "GENOMICS_CONFIGS",
    "MICRO_CONFIGS",
    "run_astronomy",
    "run_genomics",
    "run_genomics_optimizer",
    "run_micro",
    "astronomy_table",
    "genomics_table",
    "micro_overhead_table",
    "micro_query_table",
]


@dataclass
class StrategyRun:
    """Measurements for one (benchmark, strategy) execution."""

    label: str
    disk_mb: float
    runtime_s: float
    input_mb: float
    query_seconds: dict[str, float] = field(default_factory=dict)
    query_counts: dict[str, int] = field(default_factory=dict)
    plan: dict[str, list[str]] = field(default_factory=dict)


# Table II, astronomy: which strategies each named configuration assigns.
ASTRONOMY_CONFIGS: dict[str, dict] = {
    "BlackBox": {"map_builtins": False, "udf": None},
    "BlackBoxOpt": {"map_builtins": True, "udf": None},
    "FullOne": {"map_builtins": True, "udf": [FULL_ONE_B]},
    "FullMany": {"map_builtins": True, "udf": [FULL_MANY_B]},
    "SubZero": {"map_builtins": True, "udf": [COMP_ONE_B]},
}

# Table II, genomics: built-ins always use mapping lineage.
GENOMICS_CONFIGS: dict[str, list[StorageStrategy] | None] = {
    "BlackBox": None,
    "FullOne": [FULL_ONE_B],
    "FullMany": [FULL_MANY_B],
    "FullForw": [FULL_ONE_F],
    "FullBoth": [FULL_ONE_B, FULL_ONE_F],
    "PayOne": [PAY_ONE_B],
    "PayMany": [PAY_MANY_B],
    "PayBoth": [PAY_ONE_B, FULL_ONE_F],
}

# §VIII-C: the strategies compared by the microbenchmark.
MICRO_CONFIGS: dict[str, StorageStrategy | None] = {
    "<-PayMany": PAY_MANY_B,
    "<-PayOne": PAY_ONE_B,
    "<-FullMany": FULL_MANY_B,
    "<-FullOne": FULL_ONE_B,
    "->FullOne": FULL_ONE_F,
    "BlackBox": None,
}


def _timed_queries(sz: SubZero, queries, **overrides):
    seconds, counts = {}, {}
    for name, query in queries.items():
        start = time.perf_counter()
        result = sz.execute_query(query, **overrides)
        seconds[name] = time.perf_counter() - start
        counts[name] = result.count
    return seconds, counts


# -- astronomy (Figure 5) ----------------------------------------------------


def run_astronomy(
    shape: tuple[int, int] = (512, 2000),
    configs: list[str] | None = None,
    seed: int = 0,
    query_opt: bool = True,
    n_stars: int = 60,
    n_cosmic: int = 40,
) -> list[StrategyRun]:
    """Figure 5: disk/runtime overhead and BQ0-BQ4 / FQ0 / FQ0Slow costs."""
    bench = AstronomyBenchmark(
        shape=shape, seed=seed, n_stars=n_stars, n_cosmic=n_cosmic
    )
    runs = []
    for label in configs or list(ASTRONOMY_CONFIGS):
        config = ASTRONOMY_CONFIGS[label]
        sz = SubZero(bench.build_spec(), enable_query_opt=query_opt)
        if config["map_builtins"]:
            sz.use_mapping_where_possible()
        if config["udf"]:
            for udf in ASTRO_UDFS:
                sz.set_strategy(udf, *config["udf"])
        start = time.perf_counter()
        instance = sz.run(bench.inputs())
        runtime = time.perf_counter() - start
        queries = bench.queries(instance)
        seconds, counts = _timed_queries(sz, queries)
        # FQ0Slow: the same forward query without the entire-array shortcut.
        start = time.perf_counter()
        slow = sz.execute_query(queries["FQ0"], enable_entire_array=False)
        seconds["FQ0Slow"] = time.perf_counter() - start
        counts["FQ0Slow"] = slow.count
        runs.append(
            StrategyRun(
                label=label,
                disk_mb=sz.lineage_disk_bytes() / 1e6,
                runtime_s=runtime,
                input_mb=sz.input_bytes() / 1e6,
                query_seconds=seconds,
                query_counts=counts,
            )
        )
    return runs


def astronomy_table(runs: list[StrategyRun]) -> tuple[ResultTable, ResultTable]:
    overhead = ResultTable(
        "Figure 5(a): astronomy disk and runtime overhead",
        ["strategy", "disk_mb", "runtime_s", "input_mb"],
    )
    for run in runs:
        overhead.add_row(run.label, run.disk_mb, run.runtime_s, run.input_mb)
    query_names = list(runs[0].query_seconds) if runs else []
    queries = ResultTable(
        "Figure 5(b): astronomy query costs (seconds)",
        ["strategy"] + query_names,
    )
    for run in runs:
        queries.add_row(run.label, *[run.query_seconds[q] for q in query_names])
    return overhead, queries


# -- genomics (Figures 6 and 7) ------------------------------------------------


def run_genomics(
    scale: int = 100,
    configs: list[str] | None = None,
    seed: int = 0,
    query_opt: bool = False,
) -> list[StrategyRun]:
    """Figure 6: static strategies, with (6c) or without (6b) the
    query-time optimizer."""
    bench = GenomicsBenchmark(scale=scale, seed=seed)
    runs = []
    for label in configs or list(GENOMICS_CONFIGS):
        strategies = GENOMICS_CONFIGS[label]
        sz = SubZero(bench.build_spec(), enable_query_opt=query_opt)
        sz.use_mapping_where_possible()
        if strategies:
            for udf in GENOMICS_UDFS:
                sz.set_strategy(udf, *strategies)
        start = time.perf_counter()
        instance = sz.run(bench.inputs())
        runtime = time.perf_counter() - start
        seconds, counts = _timed_queries(sz, bench.queries(instance))
        runs.append(
            StrategyRun(
                label=label,
                disk_mb=sz.lineage_disk_bytes() / 1e6,
                runtime_s=runtime,
                input_mb=sz.input_bytes() / 1e6,
                query_seconds=seconds,
                query_counts=counts,
            )
        )
    return runs


def run_genomics_optimizer(
    budgets_mb: tuple[float, ...] = (1, 10, 20, 50, 100),
    scale: int = 100,
    seed: int = 0,
) -> list[StrategyRun]:
    """Figure 7: the strategy optimizer under increasing storage budgets."""
    bench = GenomicsBenchmark(scale=scale, seed=seed)
    runs = []
    for budget in budgets_mb:
        sz = SubZero(bench.build_spec(), enable_query_opt=True)
        sz.use_mapping_where_possible()
        instance = sz.profile(bench.inputs())
        workload = list(bench.queries(instance).values())
        result = sz.optimize(workload, max_disk_bytes=budget * 1e6)
        start = time.perf_counter()
        instance = sz.run(bench.inputs())
        runtime = time.perf_counter() - start
        seconds, counts = _timed_queries(sz, bench.queries(instance))
        runs.append(
            StrategyRun(
                label=f"SubZero{budget:g}",
                disk_mb=sz.lineage_disk_bytes() / 1e6,
                runtime_s=runtime,
                input_mb=sz.input_bytes() / 1e6,
                query_seconds=seconds,
                query_counts=counts,
                plan={
                    node: [s.label for s in strategies]
                    for node, strategies in result.plan.items()
                    if any(s.stores_pairs for s in strategies)
                },
            )
        )
    return runs


def genomics_table(runs: list[StrategyRun], title: str) -> ResultTable:
    query_names = list(runs[0].query_seconds) if runs else []
    table = ResultTable(
        title,
        ["strategy", "disk_mb", "runtime_s"] + [f"{q}_s" for q in query_names],
    )
    for run in runs:
        table.add_row(
            run.label,
            run.disk_mb,
            run.runtime_s,
            *[run.query_seconds[q] for q in query_names],
        )
    for run in runs:
        if run.plan:
            table.add_note(f"{run.label}: " + "; ".join(
                f"{node}={'+'.join(labels)}" for node, labels in sorted(run.plan.items())
            ))
    return table


# -- microbenchmark (Figures 8 and 9) ----------------------------------------------


def run_micro(
    fanins: tuple[int, ...] = (1, 25, 50, 100),
    fanouts: tuple[int, ...] = (1, 100),
    configs: list[str] | None = None,
    shape: tuple[int, int] = (1000, 1000),
    coverage: float = 0.1,
    query_cells: int = 1000,
    seed: int = 0,
) -> list[dict]:
    """Figures 8 and 9: overhead and backward-query cost vs fanin/fanout."""
    rows = []
    for fanout in fanouts:
        for fanin in fanins:
            bench = MicroBenchmark(
                fanin=fanin,
                fanout=fanout,
                shape=shape,
                coverage=coverage,
                seed=seed,
                query_cells=query_cells,
            )
            group: list[dict] = []
            for label in configs or list(MICRO_CONFIGS):
                strategy = MICRO_CONFIGS[label]
                sz = SubZero(bench.build_spec(), enable_query_opt=False)
                if strategy is not None:
                    sz.set_strategy("synthetic", strategy)
                start = time.perf_counter()
                instance = sz.run(bench.inputs())
                runtime = time.perf_counter() - start
                queries = bench.queries(instance)
                seconds, counts = _timed_queries(sz, queries)
                group.append(
                    {
                        "fanin": fanin,
                        "fanout": fanout,
                        "strategy": label,
                        "disk_mb": sz.lineage_disk_bytes() / 1e6,
                        "runtime_s": runtime,
                        "bq_s": seconds["BQ"],
                        "fq_s": seconds["FQ"],
                        "bq_cells": counts["BQ"],
                        "fq_cells": counts["FQ"],
                    }
                )
            baseline = next(
                (r["runtime_s"] for r in group if r["strategy"] == "BlackBox"), 0.0
            )
            for row in group:
                row["overhead_s"] = max(0.0, row["runtime_s"] - baseline)
            rows.extend(group)
    return rows


def micro_overhead_table(rows: list[dict]) -> ResultTable:
    table = ResultTable(
        "Figure 8: micro disk (MB) and runtime overhead (s) vs fanin/fanout",
        ["fanout", "fanin", "strategy", "disk_mb", "overhead_s"],
    )
    for row in rows:
        table.add_row(
            row["fanout"], row["fanin"], row["strategy"], row["disk_mb"], row["overhead_s"]
        )
    return table


def micro_query_table(rows: list[dict], backward_only: bool = True) -> ResultTable:
    table = ResultTable(
        "Figure 9: micro backward query cost (s), backward-optimized strategies",
        ["fanout", "fanin", "strategy", "bq_s"],
    )
    for row in rows:
        if backward_only and row["strategy"] not in (
            "<-PayMany",
            "<-PayOne",
            "<-FullMany",
            "<-FullOne",
        ):
            continue
        table.add_row(row["fanout"], row["fanin"], row["strategy"], row["bq_s"])
    return table
