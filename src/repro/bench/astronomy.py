"""Astronomy (LSST) benchmark: workflow, synthetic data, queries (§II-A).

The real benchmark consumed two 512x2000-pixel exposures from the LSST
project.  Those images are not distributable, so :func:`generate_images`
synthesises exposures with the properties the paper's analysis relies on —
a smooth sky background, compact Gaussian stars (high locality, sparse), and
cosmic-ray hits that differ between the two exposures.

The workflow mirrors Figure 1: 22 built-in mapping operators and four UDFs —
A/B (per-exposure cosmic-ray detection, *composite* lineage), C (cosmic-ray
removal on the composite image, *composite*), and D (star detection,
*payload/composite*).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.arrays import coords as C
from repro.arrays.array import SciArray
from repro.core.model import Direction, LineageQuery
from repro.core.modes import LineageMode
from repro.ops import (
    BroadcastSubtract,
    ClipMin,
    Convolve2D,
    DivideConstant,
    GlobalMean,
    Minimum,
    Scale,
    SubtractConstant,
    gaussian_kernel,
)
from repro.ops.base import Operator
from repro.ops.convolution import dilate_coords
from repro.storage import serialize as ser
from repro.workflow.spec import WorkflowSpec

__all__ = [
    "generate_images",
    "build_spec",
    "CosmicRayDetect",
    "CosmicRayRemove",
    "StarDetect",
    "AstronomyBenchmark",
    "UDF_NODES",
    "BUILTIN_NODES",
]

UDF_NODES = ("crd_1", "crd_2", "cr_remove", "star_detect")


def _neighbourhood_batch(
    cells: np.ndarray, offsets: np.ndarray, shape
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row clipped neighbourhoods in columnar ``(values, offsets)`` form.

    Row ``i`` of ``cells`` expands to ``cells[i] + offsets`` with
    out-of-bounds rows dropped — the whole-array equivalent of calling
    ``clip_coords(cell + offsets, shape)`` per cell, emitted as one
    descriptor for ``lwrite_batch``.
    """
    neigh = cells[:, None, :] + offsets[None, :, :]
    shape_arr = np.asarray(shape, dtype=np.int64)
    valid = ((neigh >= 0) & (neigh < shape_arr)).all(axis=2)
    set_offsets = np.zeros(cells.shape[0] + 1, dtype=np.int64)
    np.cumsum(valid.sum(axis=1), out=set_offsets[1:])
    return neigh.reshape(-1, cells.shape[1])[valid.ravel()], set_offsets

BUILTIN_NODES = tuple(
    [
        f"{name}_{i}"
        for i in (1, 2)
        for name in ("bias_sub", "flat_div", "smooth", "bg_mean", "bg_sub", "clip", "gain")
    ]
    + [
        "min_combine",
        "rescale",
        "bg2_mean",
        "bg2_sub",
        "clip2",
        "smooth2",
        "contrast",
        "floor",
    ]
)


def generate_images(
    shape: tuple[int, int] = (512, 2000),
    n_stars: int = 60,
    n_cosmic: int = 40,
    seed: int = 0,
) -> tuple[SciArray, SciArray]:
    """Two consecutive exposures of the same synthetic sky.

    Stars appear in both exposures; cosmic rays are independent single hot
    pixels per exposure (that is what lets the pipeline remove them by
    compositing, §II-A).
    """
    rng = np.random.default_rng(seed)
    h, w = shape
    sky = 100.0 + rng.normal(0.0, 2.0, size=shape)
    stars = np.zeros(shape)
    yy, xx = np.mgrid[0:h, 0:w]
    for _ in range(n_stars):
        cy, cx = rng.integers(3, h - 3), rng.integers(3, w - 3)
        amp = rng.uniform(300.0, 900.0)
        sigma = rng.uniform(1.0, 2.0)
        local = slice(max(0, cy - 6), min(h, cy + 7)), slice(max(0, cx - 6), min(w, cx + 7))
        stars[local] += amp * np.exp(
            -((yy[local] - cy) ** 2 + (xx[local] - cx) ** 2) / (2 * sigma**2)
        )
    images = []
    for _ in range(2):
        cosmic = np.zeros(shape)
        ys = rng.integers(0, h, size=n_cosmic)
        xs = rng.integers(0, w, size=n_cosmic)
        cosmic[ys, xs] = rng.uniform(2000.0, 5000.0, size=n_cosmic)
        noisy = sky + stars + cosmic + rng.normal(0.0, 1.0, size=shape)
        images.append(SciArray.from_numpy(noisy.astype(np.float64)))
    return images[0], images[1]


class CosmicRayDetect(Operator):
    """UDF A/B: flag pixels far brighter than their local median.

    A flagged output cell depends on the input pixels within ``radius`` (3,
    so 49 neighbours, matching §V's CRD example); clean cells depend only on
    the corresponding input pixel — the composite-lineage pattern.
    """

    arity = 1
    radius = 3
    payload_uniform = False
    entire_array_safe = True

    def __init__(self, sigma_factor: float = 10.0, name: str | None = None):
        super().__init__(name)
        self.sigma_factor = float(sigma_factor)
        r = self.radius
        grid = np.meshgrid(np.arange(-r, r + 1), np.arange(-r, r + 1), indexing="ij")
        self._offsets = np.stack([g.ravel() for g in grid], axis=1).astype(np.int64)

    def _detect(self, values: np.ndarray) -> np.ndarray:
        median = ndimage.median_filter(values, size=5, mode="nearest")
        residual = values - median
        sigma = max(float(np.median(np.abs(residual))) * 1.4826, 1e-9)
        return residual > self.sigma_factor * sigma

    def compute(self, inputs: list[SciArray]) -> SciArray:
        mask = self._detect(inputs[0].values())
        return SciArray.from_numpy(mask.astype(np.float64), name=self.name)

    def supported_modes(self) -> frozenset[LineageMode]:
        return frozenset(
            {LineageMode.FULL, LineageMode.PAY, LineageMode.COMP, LineageMode.BLACKBOX}
        )

    def write_lineage(self, inputs, output, ctx) -> None:
        mask = output.values() > 0.5
        hot = np.stack(np.nonzero(mask), axis=1).astype(np.int64)
        cold = np.stack(np.nonzero(~mask), axis=1).astype(np.int64)
        if ctx.wants_full:
            if hot.shape[0]:
                in_coords, in_offsets = _neighbourhood_batch(
                    hot, self._offsets, self.input_shapes[0]
                )
                one_cell = np.arange(hot.shape[0] + 1, dtype=np.int64)
                ctx.lwrite_batch(hot, one_cell, (in_coords,), (in_offsets,))
            ctx.lwrite_elementwise(cold, cold)
        if LineageMode.PAY in ctx.cur_modes:
            ctx.lwrite_payload_batch(
                hot, np.full((hot.shape[0], 1), self.radius, dtype=np.uint8)
            )
            ctx.lwrite_payload_batch(
                cold, np.zeros((cold.shape[0], 1), dtype=np.uint8)
            )
        elif LineageMode.COMP in ctx.cur_modes:
            # map_b covers clean pixels; store payload only for cosmic rays.
            ctx.lwrite_payload_batch(
                hot, np.full((hot.shape[0], 1), self.radius, dtype=np.uint8)
            )

    # composite defaults: identity
    def map_b_many(self, out_coords, input_idx):
        return C.as_coord_array(out_coords, ndim=2)

    def map_f_many(self, in_coords, input_idx):
        return C.as_coord_array(in_coords, ndim=2)

    def map_p_many(self, out_coords, payload, input_idx):
        radius = payload[0]
        if radius == 0:
            return C.as_coord_array(out_coords, ndim=2)
        grid = np.meshgrid(
            np.arange(-radius, radius + 1), np.arange(-radius, radius + 1), indexing="ij"
        )
        offsets = np.stack([g.ravel() for g in grid], axis=1).astype(np.int64)
        return dilate_coords(out_coords, offsets, self.input_shapes[0])

    def map_p_batch(self, out_coords, payloads, input_idx):
        out_coords = C.as_coord_array(out_coords, ndim=2)
        radii = _payload_first_bytes(payloads)
        pieces, rows = [], []
        for radius in np.unique(radii):
            idx = np.nonzero(radii == radius)[0]
            if radius == 0:
                pieces.append(out_coords[idx])
                rows.append(idx)
                continue
            for i in idx:  # exact per-cell neighbourhoods
                cells = self.map_p_many(out_coords[i: i + 1], bytes([radius]), input_idx)
                pieces.append(cells)
                rows.append(np.full(cells.shape[0], i, dtype=np.int64))
        if not pieces:
            return C.empty_coords(2), np.empty(0, dtype=np.int64)
        return np.concatenate(pieces), np.concatenate([np.atleast_1d(r) for r in rows])

    def runtime_cost_hint(self) -> float:
        return 8.0


class CosmicRayRemove(Operator):
    """UDF C: replace flagged pixels of the composite with a local median.

    Inputs: (composite image, mask A, mask B).  Clean pixels map one-to-one
    to all three inputs; repaired pixels additionally depend on the
    composite neighbourhood used for interpolation.
    """

    arity = 3
    radius = 2
    payload_uniform = False
    entire_array_safe = True

    def __init__(self, name: str | None = None):
        super().__init__(name)
        r = self.radius
        grid = np.meshgrid(np.arange(-r, r + 1), np.arange(-r, r + 1), indexing="ij")
        self._offsets = np.stack([g.ravel() for g in grid], axis=1).astype(np.int64)

    def infer_schema(self, input_schemas):
        input_schemas[0].require_same_shape(input_schemas[1], context=self.name)
        input_schemas[0].require_same_shape(input_schemas[2], context=self.name)
        return input_schemas[0]

    def compute(self, inputs: list[SciArray]) -> SciArray:
        composite = inputs[0].values()
        mask = (inputs[1].values() > 0.5) | (inputs[2].values() > 0.5)
        repaired = np.where(
            mask, ndimage.median_filter(composite, size=5, mode="nearest"), composite
        )
        return SciArray.from_numpy(repaired, name=self.name)

    def supported_modes(self) -> frozenset[LineageMode]:
        return frozenset(
            {LineageMode.FULL, LineageMode.PAY, LineageMode.COMP, LineageMode.BLACKBOX}
        )

    def write_lineage(self, inputs, output, ctx) -> None:
        mask = (inputs[1].values() > 0.5) | (inputs[2].values() > 0.5)
        hot = np.stack(np.nonzero(mask), axis=1).astype(np.int64)
        cold = np.stack(np.nonzero(~mask), axis=1).astype(np.int64)
        if ctx.wants_full:
            if hot.shape[0]:
                in_coords, in_offsets = _neighbourhood_batch(
                    hot, self._offsets, self.input_shapes[0]
                )
                one_cell = np.arange(hot.shape[0] + 1, dtype=np.int64)
                ctx.lwrite_batch(
                    hot,
                    one_cell,
                    (in_coords, hot, hot),
                    (in_offsets, one_cell, one_cell),
                )
            ctx.lwrite_elementwise(cold, cold, cold, cold)
        if LineageMode.PAY in ctx.cur_modes:
            ctx.lwrite_payload_batch(
                hot, np.full((hot.shape[0], 1), self.radius, dtype=np.uint8)
            )
            ctx.lwrite_payload_batch(cold, np.zeros((cold.shape[0], 1), dtype=np.uint8))
        elif LineageMode.COMP in ctx.cur_modes:
            ctx.lwrite_payload_batch(
                hot, np.full((hot.shape[0], 1), self.radius, dtype=np.uint8)
            )

    def map_b_many(self, out_coords, input_idx):
        return C.as_coord_array(out_coords, ndim=2)

    def map_f_many(self, in_coords, input_idx):
        return C.as_coord_array(in_coords, ndim=2)

    def map_p_many(self, out_coords, payload, input_idx):
        radius = payload[0]
        if radius == 0 or input_idx != 0:
            return C.as_coord_array(out_coords, ndim=2)
        grid = np.meshgrid(
            np.arange(-radius, radius + 1), np.arange(-radius, radius + 1), indexing="ij"
        )
        offsets = np.stack([g.ravel() for g in grid], axis=1).astype(np.int64)
        return dilate_coords(out_coords, offsets, self.input_shapes[0])

    def map_p_batch(self, out_coords, payloads, input_idx):
        out_coords = C.as_coord_array(out_coords, ndim=2)
        radii = _payload_first_bytes(payloads)
        if input_idx != 0:
            return out_coords, np.arange(out_coords.shape[0], dtype=np.int64)
        pieces, rows = [], []
        for radius in np.unique(radii):
            idx = np.nonzero(radii == radius)[0]
            if radius == 0:
                pieces.append(out_coords[idx])
                rows.append(idx)
                continue
            for i in idx:
                cells = self.map_p_many(out_coords[i: i + 1], bytes([radius]), input_idx)
                pieces.append(cells)
                rows.append(np.full(cells.shape[0], i, dtype=np.int64))
        if not pieces:
            return C.empty_coords(2), np.empty(0, dtype=np.int64)
        return np.concatenate(pieces), np.concatenate([np.atleast_1d(r) for r in rows])

    def runtime_cost_hint(self) -> float:
        return 8.0


class StarDetect(Operator):
    """UDF D: label connected bright regions (stars).

    Every pixel labelled *star k* depends on all pixels of star k — one
    region pair per star, the paper's flagship region-lineage example.  The
    payload is the star's member-cell set (delta-encoded packed cells), so
    payload lineage is exact; background pixels default to identity.

    ``granularity="box"`` enables the paper's §VIII-D future-work idea:
    variable-granularity lineage.  The payload shrinks to the star's
    bounding box (two packed corners) and ``map_p`` expands to every cell in
    the box — a *superset* of the true lineage, which the interviewed
    scientists deemed acceptable, traded for lossy-compressed storage.
    """

    arity = 1
    payload_uniform = True
    entire_array_safe = True

    #: payload tag bytes
    _TAG_IDENTITY = 0
    _TAG_CELLS = 1
    _TAG_BOX = 2

    def __init__(
        self,
        sigma_factor: float = 5.0,
        granularity: str = "exact",
        name: str | None = None,
    ):
        super().__init__(name)
        self.sigma_factor = float(sigma_factor)
        if granularity not in ("exact", "box"):
            raise ValueError(f"granularity must be 'exact' or 'box', got {granularity!r}")
        self.granularity = granularity

    def _label(self, values: np.ndarray) -> np.ndarray:
        threshold = values.mean() + self.sigma_factor * values.std()
        bright = values > threshold
        labels, _ = ndimage.label(bright)
        return labels

    def compute(self, inputs: list[SciArray]) -> SciArray:
        labels = self._label(inputs[0].values())
        return SciArray.from_numpy(labels.astype(np.float64), name=self.name)

    def supported_modes(self) -> frozenset[LineageMode]:
        return frozenset(
            {LineageMode.FULL, LineageMode.PAY, LineageMode.COMP, LineageMode.BLACKBOX}
        )

    def write_lineage(self, inputs, output, ctx) -> None:
        labels = output.values().astype(np.int64)
        background = np.stack(np.nonzero(labels == 0), axis=1).astype(np.int64)
        star_cells: list[np.ndarray] = []
        for star_id in range(1, labels.max() + 1):
            cells = np.stack(np.nonzero(labels == star_id), axis=1).astype(np.int64)
            if cells.shape[0]:
                star_cells.append(cells)
        # one region pair per star, all stars in one columnar descriptor
        if star_cells:
            flat = np.concatenate(star_cells)
            star_offsets = np.zeros(len(star_cells) + 1, dtype=np.int64)
            np.cumsum([c.shape[0] for c in star_cells], out=star_offsets[1:])
        if ctx.wants_full:
            if star_cells:
                ctx.lwrite_batch(flat, star_offsets, (flat,), (star_offsets,))
            ctx.lwrite_elementwise(background, background)
        if LineageMode.PAY in ctx.cur_modes:
            if star_cells:
                ctx.lwrite_payload_regions(
                    flat, star_offsets, *self._encode_star_payloads(star_cells)
                )
            ctx.lwrite_payload_batch(
                background, np.zeros((background.shape[0], 1), dtype=np.uint8)
            )
        elif LineageMode.COMP in ctx.cur_modes:
            if star_cells:
                ctx.lwrite_payload_regions(
                    flat, star_offsets, *self._encode_star_payloads(star_cells)
                )

    def _encode_star_payloads(
        self, star_cells: list[np.ndarray]
    ) -> tuple[bytes, np.ndarray]:
        """Concatenated per-star payload blobs + offsets (columnar form)."""
        blobs = [self._encode_cells(cells) for cells in star_cells]
        offsets = np.zeros(len(blobs) + 1, dtype=np.int64)
        np.cumsum([len(b) for b in blobs], out=offsets[1:])
        return b"".join(blobs), offsets

    def _encode_cells(self, cells: np.ndarray) -> bytes:
        if self.granularity == "box":
            lo, hi = C.bounding_box(cells)
            corners = C.pack_coords(np.stack([lo, hi]), self.output_shape)
            return bytes([self._TAG_BOX]) + corners.astype("<i8").tobytes()
        packed = np.sort(C.pack_coords(cells, self.output_shape))
        return bytes([self._TAG_CELLS]) + ser.encode_int_array(packed)

    def map_b_many(self, out_coords, input_idx):
        return C.as_coord_array(out_coords, ndim=2)

    def map_f_many(self, in_coords, input_idx):
        return C.as_coord_array(in_coords, ndim=2)

    def map_p_many(self, out_coords, payload, input_idx):
        if not payload or payload[0] == self._TAG_IDENTITY:
            return C.as_coord_array(out_coords, ndim=2)
        if payload[0] == self._TAG_BOX:
            corners = np.frombuffer(payload, dtype="<i8", count=2, offset=1)
            lo, hi = C.unpack_coords(corners.astype(np.int64), self.input_shapes[0])
            grids = np.meshgrid(
                *(np.arange(a, b + 1, dtype=np.int64) for a, b in zip(lo, hi)),
                indexing="ij",
            )
            return np.stack([g.ravel() for g in grids], axis=1)
        packed, _ = ser.decode_int_array(payload, 1)
        return C.unpack_coords(packed, self.input_shapes[0])

    def runtime_cost_hint(self) -> float:
        return 6.0


def _payload_first_bytes(payloads) -> np.ndarray:
    if isinstance(payloads, np.ndarray):
        return payloads[:, 0].astype(np.int64)
    return np.asarray([p[0] for p in payloads], dtype=np.int64)


def build_spec() -> WorkflowSpec:
    """The Figure-1 workflow: 22 built-ins (solid boxes) + UDFs A-D."""
    spec = WorkflowSpec(name="astronomy")
    spec.add_source("img_1")
    spec.add_source("img_2")
    for i in (1, 2):
        img = f"img_{i}"
        spec.add_node(f"bias_sub_{i}", SubtractConstant(100.0), [img])
        spec.add_node(f"flat_div_{i}", DivideConstant(1.1), [f"bias_sub_{i}"])
        spec.add_node(f"smooth_{i}", Convolve2D(gaussian_kernel(3, 1.0)), [f"flat_div_{i}"])
        spec.add_node(f"bg_mean_{i}", GlobalMean(), [f"smooth_{i}"])
        spec.add_node(f"bg_sub_{i}", BroadcastSubtract(), [f"smooth_{i}", f"bg_mean_{i}"])
        spec.add_node(f"clip_{i}", ClipMin(0.0), [f"bg_sub_{i}"])
        spec.add_node(f"gain_{i}", Scale(1.2), [f"clip_{i}"])
        spec.add_node(f"crd_{i}", CosmicRayDetect(), [f"gain_{i}"])
    spec.add_node("min_combine", Minimum(), ["gain_1", "gain_2"])
    spec.add_node("cr_remove", CosmicRayRemove(), ["min_combine", "crd_1", "crd_2"])
    spec.add_node("rescale", Scale(1.0 / 1.2), ["cr_remove"])
    spec.add_node("bg2_mean", GlobalMean(), ["rescale"])
    spec.add_node("bg2_sub", BroadcastSubtract(), ["rescale", "bg2_mean"])
    spec.add_node("clip2", ClipMin(0.0), ["bg2_sub"])
    spec.add_node("smooth2", Convolve2D(gaussian_kernel(3, 0.8)), ["clip2"])
    spec.add_node("contrast", Scale(1.5), ["smooth2"])
    spec.add_node("floor", ClipMin(0.0), ["contrast"])
    spec.add_node("star_detect", StarDetect(), ["floor"])
    return spec


# The backward spine from the star map to exposure 1.
_BQ0_PATH = (
    ("star_detect", 0),
    ("floor", 0),
    ("contrast", 0),
    ("smooth2", 0),
    ("clip2", 0),
    ("bg2_sub", 0),
    ("rescale", 0),
    ("cr_remove", 0),
    ("min_combine", 0),
    ("gain_1", 0),
    ("clip_1", 0),
    ("bg_sub_1", 0),
    ("smooth_1", 0),
    ("flat_div_1", 0),
    ("bias_sub_1", 0),
)

_FQ0_PATH = (
    ("bias_sub_1", 0),
    ("flat_div_1", 0),
    ("smooth_1", 0),
    ("bg_mean_1", 0),
    ("bg_sub_1", 1),
    ("clip_1", 0),
    ("gain_1", 0),
    ("crd_1", 0),
)


@dataclass
class AstronomyBenchmark:
    """Data + workflow + the six benchmark queries of Figure 5(b)."""

    shape: tuple[int, int] = (512, 2000)
    seed: int = 0
    n_stars: int = 60
    n_cosmic: int = 40

    def __post_init__(self):
        self.img_1, self.img_2 = generate_images(
            self.shape, self.n_stars, self.n_cosmic, self.seed
        )

    def inputs(self) -> dict[str, SciArray]:
        return {"img_1": self.img_1, "img_2": self.img_2}

    def build_spec(self) -> WorkflowSpec:
        return build_spec()

    # -- query construction (needs an executed instance to pick real cells) --

    def queries(self, instance) -> dict[str, LineageQuery]:
        """BQ0-BQ4 and FQ0, anchored to actual stars/regions in this run."""
        labels = instance.output_array("star_detect").values().astype(np.int64)
        star_ids, counts = np.unique(labels[labels > 0], return_counts=True)
        if star_ids.size == 0:
            raise ValueError("no stars detected; increase n_stars or amplitudes")
        star = int(star_ids[np.argmax(counts)])
        star_cells = np.stack(np.nonzero(labels == star), axis=1).astype(np.int64)

        h, w = self.shape
        block = _block_coords(h // 4, w // 4, min(16, h // 4), min(16, w // 4))
        queries = {
            # one star back to the raw exposure
            "BQ0": LineageQuery(star_cells, _BQ0_PATH, Direction.BACKWARD),
            # an output region back to the composite image
            "BQ1": LineageQuery(
                block,
                (
                    ("star_detect", 0),
                    ("floor", 0),
                    ("contrast", 0),
                    ("smooth2", 0),
                    ("clip2", 0),
                    ("bg2_sub", 0),
                    ("rescale", 0),
                    ("cr_remove", 0),
                ),
                Direction.BACKWARD,
            ),
            # a cosmic-ray-mask region back through the per-exposure chain
            "BQ2": LineageQuery(
                block,
                (("crd_1", 0), ("gain_1", 0), ("clip_1", 0), ("bg_sub_1", 0)),
                Direction.BACKWARD,
            ),
            # the anomalous-mean hunt: a background-corrected region back
            # through the all-to-all global mean (§II-A's faulty operator)
            "BQ3": LineageQuery(
                np.asarray([[0]]),
                (("bg2_mean", 0), ("rescale", 0), ("cr_remove", 0)),
                Direction.BACKWARD,
            ),
            # mask provenance: which mask pixels fed the repaired composite
            "BQ4": LineageQuery(
                block,
                (("cr_remove", 1), ("crd_1", 0), ("gain_1", 0)),
                Direction.BACKWARD,
            ),
            # forward through the all-to-all background mean
            "FQ0": LineageQuery(block, _FQ0_PATH, Direction.FORWARD),
        }
        return queries


def _block_coords(y0: int, x0: int, h: int, w: int) -> np.ndarray:
    yy, xx = np.mgrid[y0: y0 + h, x0: x0 + w]
    return np.stack([yy.ravel(), xx.ravel()], axis=1).astype(np.int64)
