"""Command-line experiment runner: regenerate the paper's figures.

Usage::

    python -m repro.bench fig5            # astronomy (Figure 5)
    python -m repro.bench fig6            # genomics static + dynamic (Figure 6)
    python -m repro.bench fig7            # optimizer budget sweep (Figure 7)
    python -m repro.bench fig8 fig9       # microbenchmark (Figures 8 & 9)
    python -m repro.bench all --full      # everything at paper scale
    python -m repro.bench fig5 --csv out/ # also write CSV series
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.bench.harness import (
    astronomy_table,
    genomics_table,
    micro_overhead_table,
    micro_query_table,
    run_astronomy,
    run_genomics,
    run_genomics_optimizer,
    run_micro,
)


def _maybe_csv(table, csv_dir: str | None, name: str) -> None:
    if csv_dir:
        table.to_csv(os.path.join(csv_dir, f"{name}.csv"))


def fig5(full: bool, csv_dir: str | None) -> None:
    shape = (512, 2000) if full else (128, 500)
    runs = run_astronomy(shape=shape, seed=0)
    overhead, queries = astronomy_table(runs)
    overhead.print()
    queries.print()
    _maybe_csv(overhead, csv_dir, "fig5a_overhead")
    _maybe_csv(queries, csv_dir, "fig5b_queries")


def fig6(full: bool, csv_dir: str | None) -> None:
    scale = 100 if full else 25
    static = run_genomics(scale=scale, seed=0, query_opt=False)
    table = genomics_table(static, "Figure 6(a)+(b): static strategies")
    table.print()
    _maybe_csv(table, csv_dir, "fig6ab_static")
    dynamic = run_genomics(scale=scale, seed=0, query_opt=True)
    table = genomics_table(dynamic, "Figure 6(c): with the query-time optimizer")
    table.print()
    _maybe_csv(table, csv_dir, "fig6c_dynamic")


def fig7(full: bool, csv_dir: str | None) -> None:
    scale = 100 if full else 25
    budgets = tuple(b * scale / 100 for b in (1, 10, 20, 50, 100))
    runs = run_genomics_optimizer(budgets_mb=budgets, scale=scale, seed=0)
    for run, paper_budget in zip(runs, (1, 10, 20, 50, 100)):
        run.label = f"SubZero{paper_budget}"
    table = genomics_table(runs, "Figure 7: optimizer under storage budgets")
    table.print()
    _maybe_csv(table, csv_dir, "fig7_optimizer")


def fig8(full: bool, csv_dir: str | None) -> None:
    rows = _micro_rows(full)
    table = micro_overhead_table(rows)
    table.print()
    _maybe_csv(table, csv_dir, "fig8_overhead")


def fig9(full: bool, csv_dir: str | None) -> None:
    rows = _micro_rows(full)
    table = micro_query_table(rows)
    table.print()
    _maybe_csv(table, csv_dir, "fig9_queries")


def _micro_rows(full: bool):
    return run_micro(
        fanins=(1, 10, 25, 50, 75, 100) if full else (1, 25, 100),
        fanouts=(1, 100),
        shape=(1000, 1000) if full else (400, 400),
        query_cells=1000 if full else 500,
        seed=0,
    )


FIGURES = {"fig5": fig5, "fig6": fig6, "fig7": fig7, "fig8": fig8, "fig9": fig9}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the SubZero paper's evaluation figures.",
    )
    parser.add_argument(
        "figures",
        nargs="+",
        choices=sorted(FIGURES) + ["all"],
        help="which figures to regenerate",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale parameters (slower): 512x2000 images, 100x genomics, "
        "1000x1000 micro arrays",
    )
    parser.add_argument("--csv", metavar="DIR", help="also write CSV series to DIR")
    args = parser.parse_args(argv)

    if args.csv:
        os.makedirs(args.csv, exist_ok=True)
    wanted = sorted(FIGURES) if "all" in args.figures else args.figures
    for name in wanted:
        FIGURES[name](args.full, args.csv)
    return 0


if __name__ == "__main__":
    sys.exit(main())
