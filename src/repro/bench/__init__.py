"""Benchmark workloads: astronomy (LSST), genomics, and the microbenchmark."""

from repro.bench.astronomy import AstronomyBenchmark
from repro.bench.genomics import GenomicsBenchmark
from repro.bench.harness import (
    ASTRONOMY_CONFIGS,
    GENOMICS_CONFIGS,
    MICRO_CONFIGS,
    StrategyRun,
    astronomy_table,
    genomics_table,
    micro_overhead_table,
    micro_query_table,
    run_astronomy,
    run_genomics,
    run_genomics_optimizer,
    run_micro,
)
from repro.bench.micro import MicroBenchmark, SyntheticLineageOp
from repro.bench.report import ResultTable

__all__ = [
    "AstronomyBenchmark",
    "GenomicsBenchmark",
    "MicroBenchmark",
    "SyntheticLineageOp",
    "ResultTable",
    "StrategyRun",
    "ASTRONOMY_CONFIGS",
    "GENOMICS_CONFIGS",
    "MICRO_CONFIGS",
    "run_astronomy",
    "run_genomics",
    "run_genomics_optimizer",
    "run_micro",
    "astronomy_table",
    "genomics_table",
    "micro_overhead_table",
    "micro_query_table",
]
