"""Genomics (medulloblastoma relapse) benchmark: workflow, data, queries (§II-B).

The Broad Institute's patient matrix is private, so :func:`generate_matrix`
synthesises a 56x100 patient-feature matrix with the same shape (55 feature
rows plus a relapse-label row, 100 patient columns) and the paper's scaling
procedure — replicate the patient columns ``scale`` times (the paper reports
the 100x point).

The Figure-2 workflow has 10 built-in mapping operators and four payload
UDFs: E/G extract a feature subset from the (transposed) training/test
matrices, F fits a per-feature Bayesian relapse model, and H scores test
patients against the model.  Unlike astronomy, these UDFs have no locality:
E/G shuffle columns, F has fanin ~2x#patients per model cell, and H touches
the whole model for every prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arrays import coords as C
from repro.arrays.array import SciArray
from repro.core.model import Direction, LineageQuery
from repro.core.modes import LineageMode
from repro.ops import Clip, LogTransform, Scale, Threshold, Transpose
from repro.ops.base import Operator
from repro.workflow.spec import WorkflowSpec

__all__ = [
    "generate_matrix",
    "build_spec",
    "ExtractFeatures",
    "TrainModel",
    "Predict",
    "GenomicsBenchmark",
    "UDF_NODES",
    "BUILTIN_NODES",
    "N_FEATURES_SELECTED",
]

UDF_NODES = ("extract_train", "train_model", "extract_test", "predict")
BUILTIN_NODES = (
    "t_transpose",
    "t_log",
    "t_norm",
    "m_scale",
    "m_clip",
    "s_transpose",
    "s_log",
    "s_norm",
    "p_scale",
    "p_thresh",
)

#: how many feature columns the extraction UDFs keep
N_FEATURES_SELECTED = 10
#: row index of the relapse label in the raw 56-row matrix
LABEL_ROW = 55


def generate_matrix(
    n_features: int = 55,
    n_patients: int = 100,
    scale: int = 1,
    seed: int = 0,
    relapse_rate: float = 0.35,
) -> SciArray:
    """A (n_features+1) x (n_patients*scale) matrix; last row = relapse label.

    Columns are replicated ``scale`` times (the paper's scaling procedure);
    small per-replica noise keeps feature variances realistic without
    changing lineage volume.
    """
    rng = np.random.default_rng(seed)
    relapse = (rng.random(n_patients) < relapse_rate).astype(np.float64)
    base = rng.gamma(2.0, 2.0, size=(n_features, n_patients))
    # A handful of informative features shift with the relapse label.
    informative = rng.choice(n_features, size=12, replace=False)
    base[informative] += relapse[None, :] * rng.uniform(2.0, 5.0, size=(12, 1))
    matrix = np.vstack([base, relapse[None, :]])
    if scale > 1:
        tiled = np.tile(matrix, (1, scale))
        noise = rng.normal(0.0, 0.01, size=tiled.shape)
        noise[-1, :] = 0.0  # labels stay binary
        matrix = tiled + noise
    return SciArray.from_numpy(matrix)


class _PayloadCoordMixin:
    """Shared fast paths for UDFs whose payload is one packed coordinate."""

    @staticmethod
    def _pack_payloads(packed: np.ndarray) -> np.ndarray:
        return packed.astype("<i8").view(np.uint8).reshape(-1, 8)

    @staticmethod
    def _unpack_payloads(payloads) -> np.ndarray:
        if isinstance(payloads, np.ndarray):
            return payloads.reshape(-1, 8).copy().view("<i8").ravel().astype(np.int64)
        return np.frombuffer(b"".join(payloads), dtype="<i8").astype(np.int64)


class ExtractFeatures(Operator, _PayloadCoordMixin):
    """UDF E/G: keep the ``n_select`` highest-variance feature columns.

    Input is the transposed, normalised matrix (patients x 56).  The output
    is patients x (n_select [+ label]); each output cell comes from exactly
    one input cell, but *which* one is data-dependent, so this is a payload
    operator (payload = packed source coordinate), not a mapping operator.
    """

    arity = 1
    payload_uniform = True  # single-cell pairs
    # Every output cell has a source, so a full forward frontier covers the
    # whole output; the reverse is false (unselected columns are dropped).
    entire_array_safe_forward = True

    def __init__(
        self,
        n_select: int = N_FEATURES_SELECTED,
        include_label: bool = True,
        label_col: int = LABEL_ROW,
        name: str | None = None,
    ):
        super().__init__(name)
        self.n_select = int(n_select)
        self.include_label = bool(include_label)
        self.label_col = int(label_col)
        self._selected: np.ndarray | None = None

    def infer_schema(self, input_schemas):
        schema = input_schemas[0]
        width = self.n_select + (1 if self.include_label else 0)
        if schema.ndim != 2 or schema.shape[1] <= max(self.n_select, self.label_col):
            raise ValueError(f"{self.name}: input too narrow for extraction")
        return schema.with_shape((schema.shape[0], width))

    def _select(self, values: np.ndarray) -> np.ndarray:
        candidates = [c for c in range(values.shape[1]) if c != self.label_col]
        variances = values[:, candidates].var(axis=0)
        order = np.argsort(variances)[::-1][: self.n_select]
        selected = np.sort(np.asarray(candidates, dtype=np.int64)[order])
        if self.include_label:
            selected = np.concatenate([selected, [self.label_col]])
        return selected

    def compute(self, inputs: list[SciArray]) -> SciArray:
        values = inputs[0].values()
        self._selected = self._select(values)
        return SciArray.from_numpy(values[:, self._selected].copy(), name=self.name)

    def supported_modes(self) -> frozenset[LineageMode]:
        return frozenset({LineageMode.FULL, LineageMode.PAY, LineageMode.BLACKBOX})

    def _source_coords(self) -> tuple[np.ndarray, np.ndarray]:
        """(out_coords, in_coords) row-aligned, for every output cell."""
        n_rows, n_cols = self.output_shape
        rows = np.repeat(np.arange(n_rows, dtype=np.int64), n_cols)
        out_cols = np.tile(np.arange(n_cols, dtype=np.int64), n_rows)
        in_cols = np.asarray(self._selected, dtype=np.int64)[out_cols]
        out_coords = np.stack([rows, out_cols], axis=1)
        in_coords = np.stack([rows, in_cols], axis=1)
        return out_coords, in_coords

    def write_lineage(self, inputs, output, ctx) -> None:
        out_coords, in_coords = self._source_coords()
        if ctx.wants_full:
            ctx.lwrite_elementwise(out_coords, in_coords)
        if ctx.wants_payload:
            packed = C.pack_coords(in_coords, self.input_shapes[0])
            ctx.lwrite_payload_batch(out_coords, self._pack_payloads(packed))

    def map_p_many(self, out_coords, payload, input_idx):
        packed = np.frombuffer(payload, dtype="<i8").astype(np.int64)
        return C.unpack_coords(packed, self.input_shapes[0])

    def map_p_batch(self, out_coords, payloads, input_idx):
        packed = self._unpack_payloads(payloads)
        cells = C.unpack_coords(packed, self.input_shapes[0])
        return cells, np.arange(cells.shape[0], dtype=np.int64)


class TrainModel(Operator):
    """UDF F: per-feature Bayesian relapse model.

    Input: patients x (F features + label).  Output: F x 2 — class-
    conditional feature means for relapse / no-relapse.  A model cell
    depends on its whole feature column *and* the whole label column
    (fanin = 2 x #patients; these are the "very large fanins" that make BQ1
    slow on forward-optimized stores).  Payload = packed feature column id.
    """

    arity = 1
    payload_uniform = True
    entire_array_safe = True  # every input column feeds some model cell

    def compute(self, inputs: list[SciArray]) -> SciArray:
        values = inputs[0].values()
        features, labels = values[:, :-1], values[:, -1] > 0.5
        n_relapse = max(int(labels.sum()), 1)
        n_clean = max(int((~labels).sum()), 1)
        w_relapse = features[labels].sum(axis=0) / n_relapse
        w_clean = features[~labels].sum(axis=0) / n_clean
        model = np.stack([w_relapse, w_clean], axis=1)
        return SciArray.from_numpy(model, name=self.name)

    def infer_schema(self, input_schemas):
        schema = input_schemas[0]
        return schema.with_shape((schema.shape[1] - 1, 2))

    def supported_modes(self) -> frozenset[LineageMode]:
        return frozenset({LineageMode.FULL, LineageMode.PAY, LineageMode.BLACKBOX})

    def _column_cells(self, col: int) -> np.ndarray:
        n_patients, n_cols = self.input_shapes[0]
        rows = np.arange(n_patients, dtype=np.int64)
        feature = np.stack([rows, np.full_like(rows, col)], axis=1)
        label = np.stack([rows, np.full_like(rows, n_cols - 1)], axis=1)
        return np.concatenate([feature, label])

    def write_lineage(self, inputs, output, ctx) -> None:
        n_features = self.output_shape[0]
        n_patients, n_cols = self.input_shapes[0]
        # pair f: out cells [[f,0],[f,1]]; in cells = feature column f plus
        # the label column — all emitted as one columnar descriptor
        f_idx = np.repeat(np.arange(n_features, dtype=np.int64), 2)
        out_coords = np.stack(
            [f_idx, np.tile(np.asarray([0, 1], dtype=np.int64), n_features)], axis=1
        )
        out_offsets = np.arange(n_features + 1, dtype=np.int64) * 2
        if ctx.wants_full:
            rows = np.arange(n_patients, dtype=np.int64)
            cols = np.empty((n_features, 2 * n_patients), dtype=np.int64)
            cols[:, :n_patients] = np.arange(n_features, dtype=np.int64)[:, None]
            cols[:, n_patients:] = n_cols - 1
            in_coords = np.stack(
                [np.tile(np.concatenate([rows, rows]), n_features), cols.ravel()],
                axis=1,
            )
            in_offsets = np.arange(n_features + 1, dtype=np.int64) * (2 * n_patients)
            ctx.lwrite_batch(out_coords, out_offsets, (in_coords,), (in_offsets,))
        if ctx.wants_payload:
            payloads = np.arange(n_features, dtype="<u4").tobytes()
            payload_offsets = np.arange(n_features + 1, dtype=np.int64) * 4
            ctx.lwrite_payload_regions(
                out_coords, out_offsets, payloads, payload_offsets
            )

    def map_p_many(self, out_coords, payload, input_idx):
        col = int.from_bytes(payload[:4], "little")
        return self._column_cells(col)

    def runtime_cost_hint(self) -> float:
        return 2.0


class Predict(Operator):
    """UDF H: score each test patient against the model.

    Inputs: (model F x 2, test features patients x F).  Output: patients x 1
    relapse probability.  A prediction depends on the entire model and on
    the patient's feature row; payload = packed patient row index.
    """

    arity = 2
    payload_uniform = True
    entire_array_safe = True

    def infer_schema(self, input_schemas):
        model, features = input_schemas
        if model.shape[0] != features.shape[1]:
            raise ValueError(
                f"{self.name}: model rows {model.shape[0]} != feature cols "
                f"{features.shape[1]}"
            )
        return features.with_shape((features.shape[0], 1))

    def compute(self, inputs: list[SciArray]) -> SciArray:
        model = inputs[0].values()
        feats = inputs[1].values()
        d_relapse = np.abs(feats - model[:, 0][None, :]).sum(axis=1)
        d_clean = np.abs(feats - model[:, 1][None, :]).sum(axis=1)
        score = d_clean / (d_relapse + d_clean + 1e-9)
        return SciArray.from_numpy(score.reshape(-1, 1), name=self.name)

    def supported_modes(self) -> frozenset[LineageMode]:
        return frozenset({LineageMode.FULL, LineageMode.PAY, LineageMode.BLACKBOX})

    def _model_cells(self) -> np.ndarray:
        return C.all_coords(self.input_shapes[0])

    def _row_cells(self, row: int) -> np.ndarray:
        n_feats = self.input_shapes[1][1]
        cols = np.arange(n_feats, dtype=np.int64)
        return np.stack([np.full_like(cols, row), cols], axis=1)

    def write_lineage(self, inputs, output, ctx) -> None:
        n_patients = self.output_shape[0]
        if ctx.wants_full:
            # pair p: out [[p,0]]; in0 = the whole model, in1 = patient p's
            # feature row — one columnar descriptor for all patients
            model_cells = self._model_cells()
            n_feats = self.input_shapes[1][1]
            patients = np.arange(n_patients, dtype=np.int64)
            out_coords = np.stack([patients, np.zeros_like(patients)], axis=1)
            one_cell = np.arange(n_patients + 1, dtype=np.int64)
            in_model = np.tile(model_cells, (n_patients, 1))
            in_row = np.stack(
                [
                    np.repeat(patients, n_feats),
                    np.tile(np.arange(n_feats, dtype=np.int64), n_patients),
                ],
                axis=1,
            )
            ctx.lwrite_batch(
                out_coords,
                one_cell,
                (in_model, in_row),
                (one_cell * model_cells.shape[0], one_cell * n_feats),
            )
        if ctx.wants_payload:
            out_coords = np.stack(
                [
                    np.arange(n_patients, dtype=np.int64),
                    np.zeros(n_patients, dtype=np.int64),
                ],
                axis=1,
            )
            payloads = (
                np.arange(n_patients, dtype="<i8").view(np.uint8).reshape(-1, 8)
            )
            ctx.lwrite_payload_batch(out_coords, payloads)

    def map_p_many(self, out_coords, payload, input_idx):
        if input_idx == 0:
            return self._model_cells()
        row = int(np.frombuffer(payload[:8], dtype="<i8")[0])
        return self._row_cells(row)

    def map_p_batch(self, out_coords, payloads, input_idx):
        out_coords = C.as_coord_array(out_coords, ndim=2)
        n = out_coords.shape[0]
        if input_idx == 0:
            cells = self._model_cells()
            reps = np.tile(cells, (n, 1))
            rows = np.repeat(np.arange(n, dtype=np.int64), cells.shape[0])
            return reps, rows
        if isinstance(payloads, np.ndarray):
            patient = payloads.reshape(-1, 8).copy().view("<i8").ravel().astype(np.int64)
        else:
            patient = np.frombuffer(b"".join(payloads), dtype="<i8").astype(np.int64)
        n_feats = self.input_shapes[1][1]
        cols = np.tile(np.arange(n_feats, dtype=np.int64), n)
        prows = np.repeat(patient, n_feats)
        cells = np.stack([prows, cols], axis=1)
        rows = np.repeat(np.arange(n, dtype=np.int64), n_feats)
        return cells, rows

    def runtime_cost_hint(self) -> float:
        return 2.0


def build_spec() -> WorkflowSpec:
    """The Figure-2 workflow: 10 built-ins + UDFs E, F, G, H."""
    spec = WorkflowSpec(name="genomics")
    spec.add_source("train")
    spec.add_source("test")
    # modelling phase
    spec.add_node("t_transpose", Transpose(), ["train"])
    spec.add_node("t_log", LogTransform(), ["t_transpose"])
    spec.add_node("t_norm", Scale(0.1), ["t_log"])
    spec.add_node("extract_train", ExtractFeatures(include_label=True), ["t_norm"])
    spec.add_node("train_model", TrainModel(), ["extract_train"])
    spec.add_node("m_scale", Scale(10.0), ["train_model"])
    spec.add_node("m_clip", Clip(0.0, 100.0), ["m_scale"])
    # testing phase
    spec.add_node("s_transpose", Transpose(), ["test"])
    spec.add_node("s_log", LogTransform(), ["s_transpose"])
    spec.add_node("s_norm", Scale(0.1), ["s_log"])
    spec.add_node("extract_test", ExtractFeatures(include_label=False), ["s_norm"])
    spec.add_node("predict", Predict(), ["m_clip", "extract_test"])
    spec.add_node("p_scale", Scale(100.0), ["predict"])
    spec.add_node("p_thresh", Threshold(50.0), ["p_scale"])
    return spec


_MODEL_BACKWARD_PATH = (
    ("train_model", 0),
    ("extract_train", 0),
    ("t_norm", 0),
    ("t_log", 0),
    ("t_transpose", 0),
)

_FORWARD_TO_MODEL = (
    ("t_transpose", 0),
    ("t_log", 0),
    ("t_norm", 0),
    ("extract_train", 0),
    ("train_model", 0),
)


@dataclass
class GenomicsBenchmark:
    """Data + workflow + the four benchmark queries (BQ0, BQ1, FQ0, FQ1)."""

    scale: int = 100
    seed: int = 0

    def __post_init__(self):
        self.train = generate_matrix(scale=self.scale, seed=self.seed)
        self.test = generate_matrix(scale=self.scale, seed=self.seed + 1)

    def inputs(self) -> dict[str, SciArray]:
        return {"train": self.train, "test": self.test}

    def build_spec(self) -> WorkflowSpec:
        return build_spec()

    def queries(self, instance, n_cells: int = 24) -> dict[str, LineageQuery]:
        rng = np.random.default_rng(self.seed + 7)
        n_pred = instance.output_shape("p_thresh")[0]
        pred_rows = rng.choice(n_pred, size=min(n_cells, n_pred), replace=False)
        pred_cells = np.stack(
            [pred_rows, np.zeros_like(pred_rows)], axis=1
        ).astype(np.int64)
        model_shape = instance.output_shape("train_model")
        model_cells = np.stack(
            [
                rng.choice(model_shape[0], size=min(n_cells, model_shape[0]), replace=False),
                rng.integers(0, 2, size=min(n_cells, model_shape[0])),
            ],
            axis=1,
        ).astype(np.int64)
        train_shape = instance.source_array("train").shape
        train_cells = np.stack(
            [
                rng.integers(0, train_shape[0] - 1, size=n_cells),
                rng.integers(0, train_shape[1], size=n_cells),
            ],
            axis=1,
        ).astype(np.int64)
        return {
            # a relapse prediction back to the supporting training data
            "BQ0": LineageQuery(
                pred_cells,
                (
                    ("p_thresh", 0),
                    ("p_scale", 0),
                    ("predict", 0),
                    ("m_clip", 0),
                    ("m_scale", 0),
                )
                + _MODEL_BACKWARD_PATH,
                Direction.BACKWARD,
            ),
            # a model feature back to the contributing training values
            "BQ1": LineageQuery(model_cells, _MODEL_BACKWARD_PATH, Direction.BACKWARD),
            # training values forward to the model
            "FQ0": LineageQuery(train_cells, _FORWARD_TO_MODEL, Direction.FORWARD),
            # training values forward to the predictions they affected
            "FQ1": LineageQuery(
                train_cells,
                _FORWARD_TO_MODEL
                + (
                    ("m_scale", 0),
                    ("m_clip", 0),
                    ("predict", 0),
                    ("p_scale", 0),
                    ("p_thresh", 0),
                ),
                Direction.FORWARD,
            ),
        }
