"""Client for the serving daemon (stdlib ``http.client`` only).

:class:`DaemonClient` speaks the protocol of :mod:`repro.serving.protocol`
and maps the daemon's HTTP statuses back onto the library's exception
hierarchy, so a networked caller handles failures exactly like an embedded
one: 429 raises :class:`~repro.errors.QueueFullError`, 400 raises
:class:`~repro.errors.QueryError`, everything else unexpected raises
:class:`~repro.errors.ProtocolError`.

Connections are pooled: each thread keeps one ``HTTPConnection`` alive
across calls (the daemon speaks HTTP/1.1 keep-alive), so a query costs one
round-trip, not a TCP handshake plus a round-trip.  Connection
establishment retries with linear backoff (a daemon that is still binding
its socket looks like ``ConnectionRefusedError`` for a few milliseconds).
A *reused* connection whose socket went stale (the daemon timed it out
between calls) fails at send time before any bytes reach the server — that
one case reconnects and re-sends, exactly once.  Errors after the request
reached the wire are never retried — the daemon may have executed the
query, and blind re-send would double side effects and load.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time

from repro.analysis import lockcheck
from repro.core.query import QueryRequest
from repro.errors import ProtocolError, QueryError, QueueFullError
from repro.serving import protocol

__all__ = ["DaemonClient"]


class DaemonClient:
    """One daemon endpoint, many calls; safe to share across threads
    (each thread pools its own keep-alive connection — the daemon's
    admission gate, not client-side pooling, is the concurrency control)."""

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str | None = None,
        timeout: float = 60.0,
        connect_retries: int = 40,
        connect_delay: float = 0.05,
        keep_alive: bool = True,
    ):
        self.host = host
        self.port = port
        #: identity the daemon's per-client in-flight cap is keyed on;
        #: defaults to the remote address when unset
        self.client_id = client_id
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.connect_delay = connect_delay
        #: False opens a fresh connection per call (the pre-pooling
        #: behaviour; bench_serving measures the difference)
        self.keep_alive = keep_alive
        self._local = threading.local()
        #: every pooled connection across threads, so close() can drop the
        #: lot — a thread whose pooled socket was closed under it just
        #: reconnects via the stale-socket path on its next call
        self._pooled: set[http.client.HTTPConnection] = set()
        self._pooled_lock = lockcheck.make_lock("serving.client.pool")

    # -- protocol calls ------------------------------------------------------

    def query(self, request: QueryRequest) -> dict:
        """Execute one request; returns the wire-form result dict
        (``QueryResult.to_dict()`` schema — see docs/serving.md)."""
        status, obj = self._call("POST", "/v1/query", protocol.dump_request(request))
        if status == 200:
            return obj
        self._raise_for(status, obj)

    def query_canonical(self, request: QueryRequest) -> dict:
        """:meth:`query` reduced to its deterministic projection."""
        return protocol.canonical_result(self.query(request))

    def health(self) -> dict:
        status, obj = self._call("GET", "/v1/health")
        if status != 200:
            self._raise_for(status, obj)
        return obj

    def stats(self) -> dict:
        status, obj = self._call("GET", "/v1/stats")
        if status != 200:
            self._raise_for(status, obj)
        return obj

    def shutdown(self) -> None:
        """Ask the daemon to stop (it drains in-flight queries first)."""
        status, obj = self._call("POST", "/v1/shutdown", b"")
        if status != 202:
            self._raise_for(status, obj)

    def wait_ready(self, timeout: float = 5.0) -> None:
        """Block until the daemon answers ``/v1/health`` (startup races)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.health()
                return
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(self.connect_delay)

    # -- transport -----------------------------------------------------------

    def close(self) -> None:
        """Close every pooled connection (all threads).  The client stays
        usable: the next call simply opens a fresh connection."""
        if getattr(self._local, "conn", None) is not None:
            self._local.conn = None
        with self._pooled_lock:
            conns, self._pooled = list(self._pooled), set()
        for conn in conns:
            conn.close()

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def _checkout(self) -> tuple[http.client.HTTPConnection, bool]:
        """This thread's pooled connection (reused=True) or a fresh one."""
        if self.keep_alive:
            conn = getattr(self._local, "conn", None)
            if conn is not None:
                return conn, True
        return self._connect(), False

    def _discard(self, conn: http.client.HTTPConnection) -> None:
        if getattr(self._local, "conn", None) is conn:
            self._local.conn = None
        with self._pooled_lock:
            self._pooled.discard(conn)
        conn.close()

    def _checkin(self, conn: http.client.HTTPConnection, response) -> None:
        """Pool the connection for the next call unless the response closed
        it (``Connection: close``, or keep-alive disabled)."""
        if self.keep_alive and not response.will_close:
            self._local.conn = conn
            with self._pooled_lock:
                self._pooled.add(conn)
        else:
            self._discard(conn)

    def _call(self, method: str, path: str, body: bytes | None = None):
        headers = {"Content-Type": "application/json"}
        if self.client_id is not None:
            headers["X-SubZero-Client"] = self.client_id
        conn, reused = self._checkout()
        try:
            conn.request(method, path, body=body, headers=headers)
        except (ConnectionError, http.client.CannotSendRequest, OSError):
            # Failure at send time: nothing reached the daemon.  On a
            # reused connection this is the stale keep-alive socket case
            # (the daemon idled it out between calls) — reconnect and
            # re-send, exactly once.  A fresh connection failing here is a
            # real error.  Failures after getresponse() began are NEVER
            # retried: the daemon may have executed the query.
            self._discard(conn)
            if not reused:
                raise
            conn, _ = self._connect(), False
            try:
                conn.request(method, path, body=body, headers=headers)
            except BaseException:
                self._discard(conn)
                raise
        try:
            response = conn.getresponse()
            data = response.read()
        except BaseException:
            self._discard(conn)
            raise
        self._checkin(conn, response)
        try:
            obj = json.loads(data) if data else {}
        except ValueError as exc:
            raise ProtocolError(
                f"daemon returned non-JSON body for {method} {path}: {exc}"
            ) from exc
        return response.status, obj

    def _connect(self) -> http.client.HTTPConnection:
        """Open a connection, retrying refusals while the daemon binds."""
        last: OSError | None = None
        for attempt in range(self.connect_retries + 1):
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                conn.connect()
                # http.client writes headers and body as separate segments;
                # on a reused keep-alive socket Nagle holds the second one
                # for the server's delayed ACK (~40ms/query) — disable it
                conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                return conn
            except ConnectionRefusedError as exc:
                conn.close()
                last = exc
                if attempt < self.connect_retries:
                    time.sleep(self.connect_delay)
        raise ConnectionRefusedError(
            f"daemon at {self.host}:{self.port} refused "
            f"{self.connect_retries + 1} connection attempts"
        ) from last

    @staticmethod
    def _raise_for(status: int, obj: dict) -> None:
        error = obj.get("error", {}) if isinstance(obj, dict) else {}
        message = error.get("message", f"daemon returned HTTP {status}")
        if status == 429:
            raise QueueFullError(message)
        if status == 400:
            raise QueryError(message)
        raise ProtocolError(f"HTTP {status}: {message}")
