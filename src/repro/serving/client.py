"""Client for the serving daemon (stdlib ``http.client`` only).

:class:`DaemonClient` speaks the protocol of :mod:`repro.serving.protocol`
and maps the daemon's HTTP statuses back onto the library's exception
hierarchy, so a networked caller handles failures exactly like an embedded
one: 429 raises :class:`~repro.errors.QueueFullError`, 400 raises
:class:`~repro.errors.QueryError`, everything else unexpected raises
:class:`~repro.errors.ProtocolError`.

Connection establishment retries with linear backoff (a daemon that is
still binding its socket looks like ``ConnectionRefusedError`` for a few
milliseconds); errors *after* a connection was made are never retried —
the daemon may have executed the query, and blind re-send would double
side effects and load.
"""

from __future__ import annotations

import http.client
import json
import time

from repro.core.query import QueryRequest
from repro.errors import ProtocolError, QueryError, QueueFullError
from repro.serving import protocol

__all__ = ["DaemonClient"]


class DaemonClient:
    """One daemon endpoint, many calls; safe to share across threads
    (every call opens its own connection — the daemon's admission gate,
    not client-side pooling, is the concurrency control)."""

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str | None = None,
        timeout: float = 60.0,
        connect_retries: int = 40,
        connect_delay: float = 0.05,
    ):
        self.host = host
        self.port = port
        #: identity the daemon's per-client in-flight cap is keyed on;
        #: defaults to the remote address when unset
        self.client_id = client_id
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.connect_delay = connect_delay

    # -- protocol calls ------------------------------------------------------

    def query(self, request: QueryRequest) -> dict:
        """Execute one request; returns the wire-form result dict
        (``QueryResult.to_dict()`` schema — see docs/serving.md)."""
        status, obj = self._call("POST", "/v1/query", protocol.dump_request(request))
        if status == 200:
            return obj
        self._raise_for(status, obj)

    def query_canonical(self, request: QueryRequest) -> dict:
        """:meth:`query` reduced to its deterministic projection."""
        return protocol.canonical_result(self.query(request))

    def health(self) -> dict:
        status, obj = self._call("GET", "/v1/health")
        if status != 200:
            self._raise_for(status, obj)
        return obj

    def stats(self) -> dict:
        status, obj = self._call("GET", "/v1/stats")
        if status != 200:
            self._raise_for(status, obj)
        return obj

    def shutdown(self) -> None:
        """Ask the daemon to stop (it drains in-flight queries first)."""
        status, obj = self._call("POST", "/v1/shutdown", b"")
        if status != 202:
            self._raise_for(status, obj)

    def wait_ready(self, timeout: float = 5.0) -> None:
        """Block until the daemon answers ``/v1/health`` (startup races)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.health()
                return
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(self.connect_delay)

    # -- transport -----------------------------------------------------------

    def _call(self, method: str, path: str, body: bytes | None = None):
        conn = self._connect()
        try:
            headers = {"Content-Type": "application/json"}
            if self.client_id is not None:
                headers["X-SubZero-Client"] = self.client_id
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
        finally:
            conn.close()
        try:
            obj = json.loads(data) if data else {}
        except ValueError as exc:
            raise ProtocolError(
                f"daemon returned non-JSON body for {method} {path}: {exc}"
            ) from exc
        return response.status, obj

    def _connect(self) -> http.client.HTTPConnection:
        """Open a connection, retrying refusals while the daemon binds."""
        last: OSError | None = None
        for attempt in range(self.connect_retries + 1):
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                conn.connect()
                return conn
            except ConnectionRefusedError as exc:
                conn.close()
                last = exc
                if attempt < self.connect_retries:
                    time.sleep(self.connect_delay)
        raise ConnectionRefusedError(
            f"daemon at {self.host}:{self.port} refused "
            f"{self.connect_retries + 1} connection attempts"
        ) from last

    @staticmethod
    def _raise_for(status: int, obj: dict) -> None:
        error = obj.get("error", {}) if isinstance(obj, dict) else {}
        message = error.get("message", f"daemon returned HTTP {status}")
        if status == 429:
            raise QueueFullError(message)
        if status == 400:
            raise QueryError(message)
        raise ProtocolError(f"HTTP {status}: {message}")
