"""The lineage query daemon: one engine, many concurrent clients.

:class:`QueryDaemon` wraps a ready :class:`~repro.core.subzero.SubZero`
engine (run, or resumed off a flushed catalog) in a long-lived
``http.server.ThreadingHTTPServer``.  The daemon is a *thin transport*:
every request is parsed into the same :class:`~repro.core.query.QueryRequest`
an embedded caller would build, executed through the same
``engine.query(...)`` path (each request in its own
:class:`~repro.core.query.QuerySession`, so the catalog's 2Q cache shares
one mmap per store across all serving threads), and answered with the
result's versioned ``to_dict`` form.

Backpressure is explicit, never implicit.  :class:`AdmissionGate` bounds
the daemon three ways — concurrent executions (``max_inflight``), waiting
requests beyond those (``max_queue``), and per-client in-flight requests
(``max_per_client``) — and a request that cannot be admitted is refused
*immediately* with HTTP 429 (:class:`~repro.errors.QueueFullError` for
embedded callers).  The daemon therefore holds at most
``max_inflight + max_queue`` requests' worth of buffering no matter how
many clients pile on; memory stays bounded under overload by contract,
not by luck.

Shutdown is clean: ``stop()`` (or ``POST /v1/shutdown``) flips the daemon
to *stopping* — new queries get 503 — then waits for the in-flight and
queued requests to drain before closing the listener, so no admitted
query is ever abandoned mid-execution.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.analysis import lockcheck
from repro.errors import (
    ProtocolError,
    QueryError,
    QueueFullError,
    SubZeroError,
)
from repro.serving import protocol

__all__ = ["AdmissionGate", "QueryDaemon", "ServingLimits"]


@dataclass(frozen=True)
class ServingLimits:
    """Bounds on the daemon's request admission (the backpressure knobs)."""

    #: queries executing concurrently (engine threads actually running)
    max_inflight: int = 8
    #: admitted requests allowed to *wait* for an execution slot beyond the
    #: executing set; arrivals past this are refused with 429, so total
    #: buffered work is hard-capped at ``max_inflight + max_queue``
    max_queue: int = 16
    #: in-flight (waiting + executing) requests per client identity — one
    #: greedy client cannot monopolize the queue
    max_per_client: int = 8
    #: how long an admitted request may wait for an execution slot before
    #: the gate gives up and sheds it (429 with Retry-After)
    queue_timeout_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if self.max_per_client < 1:
            raise ValueError("max_per_client must be >= 1")


class AdmissionGate:
    """Bounded two-stage admission: a waiting line, then execution slots.

    ``enter`` either admits the caller (possibly after waiting for a slot)
    or raises :class:`~repro.errors.QueueFullError` — it never buffers
    beyond the configured bounds.  Every successful ``enter`` must be
    paired with exactly one ``exit`` (the daemon does this in a finally).

    The counters live under one checked lock; the execution slots are a
    semaphore so waiters block *outside* the lock and admissions of other
    clients never queue behind a full gate.
    """

    def __init__(self, limits: ServingLimits):
        self.limits = limits
        self._lock = lockcheck.make_lock("serving.gate")
        self._slots = threading.Semaphore(limits.max_inflight)
        self._waiting = 0
        self._executing = 0
        self._per_client: dict[str, int] = {}
        self._admitted = 0
        self._rejected = 0
        #: set whenever nothing is waiting or executing (shutdown drains on it)
        self._idle = threading.Event()
        self._idle.set()

    def enter(self, client: str) -> None:
        """Admit one request for ``client`` or raise ``QueueFullError``."""
        limits = self.limits
        with self._lock:
            if self._per_client.get(client, 0) >= limits.max_per_client:
                self._rejected += 1
                raise QueueFullError(
                    f"client {client!r} already has "
                    f"{limits.max_per_client} requests in flight"
                )
            if self._waiting >= limits.max_queue:
                self._rejected += 1
                raise QueueFullError(
                    f"request queue is full ({limits.max_queue} waiting)"
                )
            self._waiting += 1
            self._per_client[client] = self._per_client.get(client, 0) + 1
            self._idle.clear()
        # the slot is handed to exit() via the gate's pairing contract
        got = self._slots.acquire(timeout=limits.queue_timeout_seconds)  # szlint: ignore[SZ001] -- released by the paired exit(); timeout path rolls back below
        if not got:
            with self._lock:
                self._waiting -= 1
                self._drop_client_locked(client)
                self._rejected += 1
                self._check_idle_locked()
            raise QueueFullError(
                "no execution slot freed within "
                f"{limits.queue_timeout_seconds:g}s"
            )
        with self._lock:
            self._waiting -= 1
            self._executing += 1
            self._admitted += 1

    def exit(self, client: str) -> None:
        """Return the slot taken by the matching ``enter``."""
        self._slots.release()
        with self._lock:
            self._executing -= 1
            self._drop_client_locked(client)
            self._check_idle_locked()

    def drain(self, timeout: float | None = None) -> bool:
        """Block until nothing is waiting or executing; True when drained."""
        return self._idle.wait(timeout)

    def is_idle(self) -> bool:
        """Non-blocking idleness probe — the background-maintenance worker
        only starts a compaction slice while this is True."""
        return self._idle.is_set()

    def stats(self) -> dict:
        with self._lock:
            return {
                "waiting": self._waiting,
                "executing": self._executing,
                "admitted": self._admitted,
                "rejected": self._rejected,
                "clients": len(self._per_client),
            }

    def _drop_client_locked(self, client: str) -> None:
        count = self._per_client.get(client, 0) - 1
        if count <= 0:
            self._per_client.pop(client, None)
        else:
            self._per_client[client] = count

    def _check_idle_locked(self) -> None:
        if self._waiting == 0 and self._executing == 0:
            self._idle.set()


class _DaemonServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying a reference back to its daemon."""

    #: handler threads must not block interpreter exit
    daemon_threads = True
    #: fast rebinds across back-to-back daemon restarts in tests
    allow_reuse_address = True
    #: backpressure is the admission gate's job (429), not the kernel's:
    #: a connection flood must reach the handlers, not die as SYN-queue
    #: drops/resets against socketserver's default backlog of 5
    request_queue_size = 128

    def __init__(self, address: tuple[str, int], daemon: "QueryDaemon"):
        self.subzero_daemon = daemon
        super().__init__(address, _RequestHandler)


class _RequestHandler(BaseHTTPRequestHandler):
    """Routes the protocol's endpoints; one instance per connection."""

    protocol_version = "HTTP/1.1"
    server_version = "subzero-serving/" + str(protocol.PROTOCOL_VERSION)
    #: keep-alive responses must not sit in Nagle's buffer waiting for the
    #: client's delayed ACK — flush each small response segment immediately
    disable_nagle_algorithm = True

    @property
    def daemon(self) -> "QueryDaemon":
        return self.server.subzero_daemon  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging is the caller's business, not stderr's

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/v1/health":
            status = "stopping" if self.daemon.stopping else "serving"
            self._send(200, {"status": status})
        elif self.path == "/v1/stats":
            self._send(200, self.daemon.stats())
        else:
            self._send(
                404, protocol.error_body("ProtocolError", f"no endpoint {self.path!r}")
            )

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/v1/query":
            self._handle_query()
        elif self.path == "/v1/shutdown":
            self.daemon.request_shutdown()
            self._send(202, {"status": "stopping"})
        else:
            self._send(
                404, protocol.error_body("ProtocolError", f"no endpoint {self.path!r}")
            )

    def _handle_query(self) -> None:
        daemon = self.daemon
        if daemon.stopping:
            self._send(
                503, protocol.error_body("ProtocolError", "daemon is shutting down")
            )
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            request = protocol.load_request(self.rfile.read(length))
        except (ProtocolError, QueryError) as exc:
            self._send(400, protocol.error_body(type(exc).__name__, str(exc)))
            return
        client = self.headers.get("X-SubZero-Client") or self.client_address[0]
        try:
            daemon.gate.enter(client)
        except QueueFullError as exc:
            self._send(
                429,
                protocol.error_body("QueueFullError", str(exc)),
                retry_after=1,
            )
            return
        try:
            result = daemon.execute(request)
        except QueryError as exc:
            self._send(400, protocol.error_body(type(exc).__name__, str(exc)))
            return
        except SubZeroError as exc:
            self._send(500, protocol.error_body(type(exc).__name__, str(exc)))
            return
        finally:
            daemon.gate.exit(client)
        self._send(200, result)

    def _send(self, status: int, obj: dict, retry_after: int | None = None) -> None:
        data = json.dumps(obj).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            if retry_after is not None:
                self.send_header("Retry-After", str(retry_after))
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up mid-response; nothing to salvage


class QueryDaemon:
    """A long-lived serving daemon around one query engine.

    ::

        engine = SubZero(spec, memory_budget_bytes=256 << 20)
        engine.resume(versions, wal=wal, lineage_dir="lineage/")
        with QueryDaemon(engine, port=0) as daemon:
            host, port = daemon.address
            ...  # clients connect; daemon.stop() drains and closes

    ``engine`` is anything exposing ``query(QueryRequest) -> QueryResult``
    (the :class:`~repro.core.subzero.SubZero` facade).  When a
    :class:`~repro.serving.workers.WorkerPool` is passed, CPU-bound
    execution is delegated to its processes instead of the serving
    thread, and the HTTP threads only do transport.
    """

    def __init__(
        self,
        engine,
        host: str = "127.0.0.1",
        port: int = 0,
        limits: ServingLimits | None = None,
        workers=None,
        maintenance: bool = True,
        maintenance_budget_bytes: int | None = None,
    ):
        self.engine = engine
        self.limits = limits or ServingLimits()
        self.gate = AdmissionGate(self.limits)
        self.workers = workers
        self._server = _DaemonServer((host, port), self)
        self._thread: threading.Thread | None = None
        self._state_lock = lockcheck.make_lock("serving.daemon.state")
        self._stopping = False
        self._stopped = False
        # autonomous LSM maintenance: a single background worker that
        # consumes the engine's compaction_advice() whenever the admission
        # gate is idle, in budgeted slices — zero manual compact() calls
        # in steady state.  Off when the engine has no compaction surface.
        self._maintenance = None
        if maintenance and hasattr(engine, "compaction_advice"):
            from repro.serving.maintenance import (
                DEFAULT_BUDGET_BYTES,
                MaintenanceWorker,
            )

            self._maintenance = MaintenanceWorker(
                engine,
                is_idle=self.gate.is_idle,
                stats=getattr(engine, "stats", None),
                budget_bytes=(
                    maintenance_budget_bytes
                    if maintenance_budget_bytes is not None
                    else DEFAULT_BUDGET_BYTES
                ),
            )

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolves at bind time)."""
        host, port = self._server.server_address[:2]
        return (host, port)

    @property
    def stopping(self) -> bool:
        return self._stopping

    def start(self) -> "QueryDaemon":
        """Start serving on a background thread; returns self."""
        thread = threading.Thread(
            target=self._server.serve_forever,
            name="subzero-daemon",
            daemon=True,
        )
        self._thread = thread
        thread.start()
        if self._maintenance is not None:
            self._maintenance.start()
        return self

    def request_shutdown(self) -> None:
        """Begin a clean stop without blocking the calling (handler) thread."""
        threading.Thread(
            target=self.stop, name="subzero-daemon-stop", daemon=True
        ).start()

    def stop(self, drain_timeout: float | None = 30.0) -> None:
        """Stop serving: refuse new queries, drain in-flight ones, stop
        maintenance, close.

        Idempotent.  Requests already admitted when the stop begins run to
        completion (bounded by ``drain_timeout``); requests arriving after
        it get 503.  The maintenance worker is joined *after* the drain —
        an active budgeted compaction slice finishes (per-key compaction
        has no safe midpoint) — and *before* the sockets close; a failure
        it captured is re-raised exactly once, after the server is down,
        so shutdown always completes.
        """
        with self._state_lock:
            if self._stopped:
                return
            self._stopping = True
            self._stopped = True
        self.gate.drain(drain_timeout)
        maintenance_error: BaseException | None = None
        if self._maintenance is not None:
            try:
                self._maintenance.stop()
            except BaseException as exc:  # noqa: BLE001 -- re-raised below, once
                maintenance_error = exc
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if maintenance_error is not None:
            raise maintenance_error

    def __enter__(self) -> "QueryDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- execution -----------------------------------------------------------

    def execute(self, request) -> dict:
        """Run one admitted request; returns the wire-form result dict."""
        if self.workers is not None:
            return self.workers.query_dict(request.to_dict())
        return self.engine.query(request).to_dict()

    def stats(self) -> dict:
        """Gate + serving-cache counters (the ``/v1/stats`` payload)."""
        payload = {
            "protocol": protocol.PROTOCOL_VERSION,
            "stopping": self._stopping,
            "gate": self.gate.stats(),
        }
        runtime = getattr(self.engine, "runtime", None)
        if runtime is not None:
            payload["cache"] = runtime.serving_stats()
        return payload
