"""Background budgeted compaction: the self-driving LSM maintenance loop.

PR 5's delta generations made incremental capture O(delta) but left the
read side paying O(generations) until somebody remembered to call
``compact()``.  Smoke's lesson is that lineage maintenance must ride the
*idle* path, never the foreground one — so :class:`MaintenanceWorker`
runs a single daemon thread that

* sleeps until the serving side reports idle (the daemon's
  :meth:`~repro.serving.daemon.AdmissionGate.is_idle`, or the facade's
  in-flight counter during :meth:`SubZero.serve
  <repro.core.subzero.SubZero.serve>`),
* asks the engine's ``compaction_advice()`` where a merge would pay the
  most (the cost model's overlay penalty, worst first), and
* runs one ``compact_lineage(budget_bytes=...)`` slice — bounded bytes
  read+rewritten, so each slice is short and the worker re-checks for
  foreground work between slices (the backoff contract: a query arriving
  mid-slice waits only for the bounded slice, never a full merge).

Every slice is accounted on the engine's :class:`StatsCollector
<repro.core.stats.StatsCollector>` (``compactions_run``,
``bytes_merged``, ``maintenance_seconds``) so ``serving_stats()``,
``/v1/stats`` and ``explain()`` can show maintenance riding along.

Shutdown contract: :meth:`MaintenanceWorker.stop` wakes the thread, lets
an in-flight slice finish (compaction is atomic per key — there is no
safe midpoint to abandon), joins, and re-raises the first failure the
worker captured — exactly once; the worker parks after a failure rather
than retrying a broken merge forever.
"""

from __future__ import annotations

import threading
import time

from repro.analysis import lockcheck

__all__ = ["MaintenanceWorker", "DEFAULT_BUDGET_BYTES"]

#: bytes read+rewritten per compaction slice — small enough that a
#: foreground query arriving mid-slice waits a bounded moment, large
#: enough that a 20-generation store drains in a handful of slices
DEFAULT_BUDGET_BYTES = 32 << 20


class MaintenanceWorker:
    """One background thread that keeps an engine's catalog compacted.

    ``engine`` is anything exposing ``compaction_advice()`` and
    ``compact_lineage(node=, strategy=, budget_bytes=)`` (the
    :class:`~repro.core.subzero.SubZero` facade).  ``is_idle`` is the
    foreground-pressure probe — the worker only starts a slice while it
    returns True, and a probe flipping False between slices is the
    backoff signal.  ``stats`` is the engine's collector (may be None).
    """

    def __init__(
        self,
        engine,
        is_idle=None,
        stats=None,
        budget_bytes: int = DEFAULT_BUDGET_BYTES,
        interval_s: float = 0.05,
        idle_interval_s: float = 1.0,
    ):
        self.engine = engine
        self.is_idle = is_idle if is_idle is not None else lambda: True
        self.stats = stats
        self.budget_bytes = budget_bytes
        self.interval_s = interval_s
        self.idle_interval_s = idle_interval_s
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None
        self._error_lock = lockcheck.make_lock("serving.maintenance.error")
        #: round-robin cursor over a partitioned catalog's partition ids
        #: (only the worker thread touches it)
        self._rr = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "MaintenanceWorker":
        """Start the maintenance thread (idempotent); returns self."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="subzero-maintenance", daemon=True
        )
        self._thread.start()
        return self

    def wake(self) -> None:
        """Nudge the worker out of its idle backoff (e.g. after a flush
        appended fresh generations)."""
        self._wake.set()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def stop(self, timeout: float | None = 30.0) -> None:
        """Stop and join the worker; an in-flight compaction slice runs to
        completion first (per-key compaction has no safe midpoint).

        Re-raises the first failure the worker captured — once: a second
        ``stop()`` (or a stop after the raise) returns quietly, so the
        shutdown paths that call this from both ``close()`` and ``__exit__``
        do not double-report."""
        self._stop.set()
        self._wake.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None
        with self._error_lock:
            error, self._error = self._error, None
        if error is not None:
            raise error

    # -- candidate selection ---------------------------------------------------

    def _pick(self, advice):
        """The next compaction candidate from non-empty ``advice``.

        A monolithic catalog takes the top-ranked entry.  A partitioned
        catalog rotates *round-robin across partitions*: each pass serves
        the worst candidate of the next partition (in id order) that has
        any advice, so one hot partition's backlog cannot starve the
        others' maintenance — every partition's read amplification drains
        within one rotation."""
        runtime = getattr(self.engine, "runtime", None)
        catalog = getattr(runtime, "catalog", None)
        partition_for = getattr(catalog, "partition_for_node", None)
        if partition_for is None:
            return advice[0]
        ids = catalog.partition_ids()
        if len(ids) <= 1:
            return advice[0]
        by_pid = {}
        for item in advice:
            # advice is sorted worst-first, so the first entry seen per
            # partition is that partition's costliest candidate
            by_pid.setdefault(partition_for(item[0]), item)
        n = len(ids)
        for offset in range(n):
            item = by_pid.get(ids[(self._rr + offset) % n])
            if item is not None:
                self._rr = (self._rr + offset + 1) % n
                return item
        return advice[0]  # every candidate is on an unmapped node

    # -- the loop ------------------------------------------------------------

    def _run(self) -> None:
        backoff = self.interval_s
        while not self._stop.is_set():
            # sleep first: a freshly started worker yields to whatever the
            # caller is about to do, and every failed/empty pass backs off
            self._wake.wait(backoff)
            self._wake.clear()
            if self._stop.is_set():
                return
            if not self.is_idle():
                backoff = self.interval_s  # foreground pressure: yield
                continue
            try:
                advice = self.engine.compaction_advice()
                if not advice:
                    backoff = self.idle_interval_s  # steady state: nap
                    continue
                node, strategy, _gens, _penalty = self._pick(advice)
                # re-check between advice and the slice: a query may have
                # arrived while we ranked candidates
                if not self.is_idle():
                    backoff = self.interval_s
                    continue
                t0 = time.perf_counter()
                report = self.engine.compact_lineage(
                    node=node, strategy=strategy, budget_bytes=self.budget_bytes
                )
                seconds = time.perf_counter() - t0
                if self.stats is not None:
                    self.stats.record_maintenance(
                        len(report.compacted), report.bytes_written, seconds
                    )
                backoff = 0.0  # more advice may remain: drain while idle
            except BaseException as exc:  # noqa: BLE001 -- parked for stop() to re-raise
                with self._error_lock:
                    if self._error is None:
                        self._error = exc
                return
