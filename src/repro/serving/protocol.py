"""Wire protocol shared by the serving daemon and its client.

The protocol is deliberately thin: a query request is exactly
``QueryRequest.to_dict()`` as a JSON object (schema ``subzero.request``
v1, see :data:`repro.core.query.REQUEST_SCHEMA_VERSION`), and a success
response is exactly ``QueryResult.to_dict()`` (schema ``subzero.result``
v1).  Nothing is invented at the transport layer, so an embedded caller
and a networked caller are provably issuing — and receiving — the same
objects.

Errors travel as a JSON envelope ``{"error": {"type", "message"}}`` with
the HTTP status carrying the class of failure:

======  =======================================================
status  meaning
======  =======================================================
200     success; body is the result object
400     malformed or invalid request (``ProtocolError`` /
        ``QueryError``)
404     unknown endpoint
429     backpressure: the admission gate refused the request
        (``QueueFullError``); retry after ``Retry-After`` seconds
500     the engine failed executing a well-formed request
503     the daemon is shutting down; do not retry against it
======  =======================================================

:func:`canonical_result` defines the *deterministic* projection of a
result — the fields that must be identical between an in-process
execution and a daemon-served one (everything except wall-clock
``seconds`` and the ``cache`` snapshot).  Equivalence tests and the
serving bench compare canonical forms, never raw responses.
"""

from __future__ import annotations

import json

from repro.core.query import QueryRequest
from repro.errors import ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "canonical_result",
    "dump_request",
    "error_body",
    "load_request",
]

#: version of the HTTP surface (URL layout + envelope), independent of the
#: request/result schema versions stamped inside the payloads
PROTOCOL_VERSION = 1


def dump_request(request: QueryRequest) -> bytes:
    """Encode a request for the wire (UTF-8 JSON of its dict form)."""
    return json.dumps(request.to_dict()).encode("utf-8")


def load_request(data: bytes) -> QueryRequest:
    """Decode a wire request; :class:`ProtocolError` on non-JSON bodies,
    :class:`~repro.errors.QueryError` on structurally invalid requests."""
    try:
        obj = json.loads(data)
    except ValueError as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}") from exc
    return QueryRequest.from_dict(obj)


def error_body(kind: str, message: str) -> dict:
    """The error envelope: ``kind`` is the exception class name the client
    should re-raise (``QueryError``, ``QueueFullError``, ...)."""
    return {"error": {"type": kind, "message": message}}


#: per-step fields that are run diagnostics, not query semantics
_STEP_DIAGNOSTICS = ("seconds",)


def canonical_result(obj: dict) -> dict:
    """The deterministic projection of a ``QueryResult.to_dict()`` payload.

    Strips wall-clock timings and the serving-cache snapshot — everything
    that legitimately differs between two executions of the same request —
    leaving the fields that must match exactly: schema version, frontier
    shape, cell count, coordinates (row-major scan order), and the
    structural per-step fields (node, direction, method, cell counts,
    blackbox switches, shortcuts, dropped cells).

    ``canonical_result(daemon_response) == canonical_result(local.to_dict())``
    is the daemon's correctness contract.
    """
    try:
        steps = [
            {k: v for k, v in step.items() if k not in _STEP_DIAGNOSTICS}
            for step in obj.get("steps", ())
        ]
        return {
            "v": obj["v"],
            "shape": list(obj["shape"]),
            "count": int(obj["count"]),
            "coords": [list(c) for c in obj["coords"]],
            "steps": steps,
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed query result payload: {exc}") from exc
