"""Network serving for lineage queries: daemon, client, wire protocol.

The package is a *thin transport* over the engine's canonical query
surface: :class:`~repro.core.query.QueryRequest` in,
:class:`~repro.core.query.QueryResult` (as its versioned ``to_dict`` wire
form) out.  The daemon never reimplements query semantics — it parses the
request, runs it through the same :meth:`SubZero.query
<repro.core.subzero.SubZero.query>` an embedded caller would use, and
serializes the result; :func:`~repro.serving.protocol.canonical_result`
defines which result fields are deterministic, so a networked answer is
testably byte-identical to the in-process one.

Pieces:

* :mod:`repro.serving.protocol` — request/response encoding, error
  envelope, and the canonical (diagnostics-stripped) result form.
* :mod:`repro.serving.daemon` — :class:`QueryDaemon`, a long-lived
  stdlib ``http.server`` daemon owning one engine (and thereby one
  :class:`~repro.core.catalog.StoreCatalog`), with bounded admission
  (queue + per-client caps) and explicit 429 backpressure.
* :mod:`repro.serving.client` — :class:`DaemonClient`, a stdlib
  ``http.client`` wrapper with retry-on-connect and typed error mapping.
* :mod:`repro.serving.maintenance` — :class:`MaintenanceWorker`, the
  background budgeted-compaction thread the daemon (and
  ``SubZero.serve``) runs whenever the admission gate is idle.
* :mod:`repro.serving.workers` — :class:`WorkerPool`, a multi-process
  pool for CPU-bound lowering: fork/spawn workers open the same
  read-only mmap segments, sharing the OS page cache while escaping
  the GIL.

Everything is standard library only; the daemon installs nowhere an
offline container cannot follow.
"""

from repro.core.query import (
    REQUEST_SCHEMA_VERSION,
    RESULT_SCHEMA_VERSION,
    QueryRequest,
    QueryResult,
)
from repro.serving.client import DaemonClient
from repro.serving.daemon import AdmissionGate, QueryDaemon, ServingLimits
from repro.serving.maintenance import MaintenanceWorker
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    canonical_result,
    dump_request,
    error_body,
    load_request,
)
from repro.serving.workers import WorkerPool

__all__ = [
    "AdmissionGate",
    "DaemonClient",
    "MaintenanceWorker",
    "PROTOCOL_VERSION",
    "QueryDaemon",
    "QueryRequest",
    "QueryResult",
    "REQUEST_SCHEMA_VERSION",
    "RESULT_SCHEMA_VERSION",
    "ServingLimits",
    "WorkerPool",
    "canonical_result",
    "dump_request",
    "error_body",
    "load_request",
]
