"""Multi-process worker pool for CPU-bound query lowering.

Python threads share one GIL, so a daemon whose queries are dominated by
decode/lowering CPU (not mmap I/O) serializes on it.  :class:`WorkerPool`
escapes that: queries run in worker *processes*, each owning its own
engine over the same read-only segment files.  Because segments are
mmap-backed and never written by readers, every worker's mappings share
one copy of the data in the OS page cache — N workers cost N engines'
bookkeeping, not N copies of the lineage.

Two ways to give workers an engine:

* ``WorkerPool(engine=sz)`` — **fork** mode.  The live engine is
  inherited by forked children (copy-on-write; the page cache backing its
  mmaps is shared by definition).  Requires a platform with ``fork``
  (POSIX); the pool must be created before extra threads make forking
  unsafe — create it at daemon startup, not per request.
* ``WorkerPool(engine_factory=f)`` — **spawn** mode (portable).  ``f``
  must be a picklable module-level callable returning a ready engine
  (typically: build the spec, ``resume`` off the flushed catalog).  Each
  worker calls it once at startup.

Requests cross the process boundary in wire form (``to_dict()`` JSON-able
dicts), the same schema the network daemon speaks — so
``pool.query(request)`` is observably identical to ``engine.query(request)``
modulo diagnostics.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

from repro.core.query import QueryRequest
from repro.errors import SubZeroError

__all__ = ["WorkerPool"]

#: fork mode: the parent parks the engine here before creating the pool;
#: forked children inherit the binding (spawned children do not — they
#: build their own engine from the factory instead)
_FORK_ENGINE = None

#: per-worker-process engine, set once by the pool initializer
_WORKER_ENGINE = None


def _init_worker(factory) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = factory() if factory is not None else _FORK_ENGINE
    if _WORKER_ENGINE is None:
        raise SubZeroError(
            "worker process started without an engine: fork-mode pools "
            "need a fork start method, spawn-mode pools need a factory"
        )


def _run_query(request_dict: dict) -> dict:
    request = QueryRequest.from_dict(request_dict)
    return _WORKER_ENGINE.query(request).to_dict()


class WorkerPool:
    """A process pool executing :class:`QueryRequest` s (see module doc)."""

    def __init__(
        self,
        engine=None,
        engine_factory=None,
        workers: int = 2,
        mp_context: str | None = None,
    ):
        if (engine is None) == (engine_factory is None):
            raise ValueError(
                "pass exactly one of engine= (fork mode) or "
                "engine_factory= (spawn mode)"
            )
        if mp_context is None:
            mp_context = "fork" if engine is not None else "spawn"
        methods = multiprocessing.get_all_start_methods()
        if mp_context not in methods:
            raise SubZeroError(
                f"start method {mp_context!r} unavailable on this platform "
                f"(have: {', '.join(methods)}); use engine_factory= with "
                "spawn instead"
            )
        if engine is not None and mp_context != "fork":
            raise ValueError(
                "a live engine can only cross into workers by fork; "
                "pass engine_factory= for spawn/forkserver pools"
            )
        self.mp_context = mp_context
        self.workers = workers
        if engine is not None:
            global _FORK_ENGINE
            _FORK_ENGINE = engine
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(mp_context),
            initializer=_init_worker,
            initargs=(engine_factory,),
        )

    # -- execution -----------------------------------------------------------

    def query(self, request: QueryRequest) -> dict:
        """Execute one request in a worker; returns the wire-form result
        dict.  Engine exceptions (``QueryError`` etc.) propagate."""
        return self.query_dict(request.to_dict())

    def query_dict(self, request_dict: dict) -> dict:
        """Wire-form in, wire-form out (the daemon's delegation path)."""
        return self._pool.submit(_run_query, request_dict).result()

    def map(self, requests) -> list[dict]:
        """Execute a batch across the workers; results in input order."""
        futures = [
            self._pool.submit(_run_query, r.to_dict()) for r in requests
        ]
        return [f.result() for f in futures]

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
