#!/usr/bin/env python3
"""Dead-link gate for the documentation layer (stdlib only).

Scans ``README.md`` and every ``*.md`` under ``docs/`` for relative
markdown links and fails (exit 1) when a target does not resolve:

* ``[text](path/to/file.md)`` — the file must exist relative to the
  document that links it (or repo-root-relative with a leading ``/``);
* ``[text](file.md#anchor)`` / ``[text](#anchor)`` — the anchor must
  match a heading in the target document, slugified the way GitHub
  renders it (lowercase, spaces to dashes, punctuation dropped);
* bare directory links (``docs/``) must name an existing directory.

External links (``http(s)://``, ``mailto:``) are skipped on purpose:
this gate is about keeping the *internal* doc graph sound — CI must not
flake on somebody else's server.

Run from the repo root (CI does)::

    python scripts/check_doc_links.py
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

# inline links: [text](target).  The target group stops at the first
# unescaped close-paren; markdown image links (![alt](src)) match too,
# which is what we want — a broken diagram link is still a broken link.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _slugify(heading: str) -> str:
    """GitHub's heading → anchor rule: strip markup, lowercase, drop
    punctuation, spaces become dashes."""
    text = re.sub(r"[*_`]|\[([^\]]*)\]\([^)]*\)", r"\1", heading).strip()
    text = re.sub(r"[^\w\- ]", "", text.lower())
    return re.sub(r" ", "-", text)


def _anchors(path: pathlib.Path) -> set[str]:
    body = _CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    slugs: dict[str, int] = {}
    out = set()
    for match in _HEADING.finditer(body):
        slug = _slugify(match.group(1))
        n = slugs.get(slug, 0)
        slugs[slug] = n + 1
        out.add(slug if n == 0 else f"{slug}-{n}")  # duplicate headings
    return out


def _check_file(doc: pathlib.Path) -> list[str]:
    errors = []
    body = _CODE_FENCE.sub("", doc.read_text(encoding="utf-8"))
    rel = doc.relative_to(ROOT)
    for match in _LINK.finditer(body):
        target = match.group(1)
        if target.startswith(_EXTERNAL):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            if path_part.startswith("/"):
                resolved = ROOT / path_part.lstrip("/")
            else:
                resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{rel}: dead link -> {target}")
                continue
        else:
            resolved = doc  # pure in-page anchor: #section
        if anchor and resolved.suffix == ".md" and resolved.is_file():
            if anchor.lower() not in _anchors(resolved):
                errors.append(f"{rel}: missing anchor -> {target}")
    return errors


def main() -> int:
    docs = [ROOT / "README.md"] + sorted((ROOT / "docs").rglob("*.md"))
    missing = [d for d in docs if not d.is_file()]
    errors = [f"required document missing: {d.relative_to(ROOT)}" for d in missing]
    checked = 0
    for doc in docs:
        if doc.is_file():
            errors.extend(_check_file(doc))
            checked += 1
    for line in errors:
        print(f"FAIL {line}", file=sys.stderr)
    verdict = "FAIL" if errors else "OK"
    print(f"{verdict}: {len(errors)} dead link(s), {checked} document(s) checked")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
